#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "baselines/itransformer.h"
#include "baselines/trainer.h"
#include "core/config.h"
#include "core/distillation.h"
#include "core/timekd.h"
#include "data/datasets.h"
#include "data/window_dataset.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/observer.h"
#include "tensor/ops.h"

namespace timekd {
namespace {

using data::WindowDataset;
using obs::CountingObserver;
using obs::EpochRecord;
using obs::FailFastMode;
using obs::HealthConfig;
using obs::HealthEventType;
using obs::HealthMonitor;
using obs::HealthVerdict;
using obs::StepRecord;
using tensor::Tensor;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Monitor configs in the unit tests pin the output paths to "" so ambient
/// TIMEKD_HEALTH_OUT / TIMEKD_REPORT_HTML never leak files into the suite.
HealthConfig QuietConfig() {
  HealthConfig config;
  config.events_path = "";
  config.html_report_path = "";
  return config;
}

StepRecord MakeStep(int64_t step, double loss, double grad_norm = 1.0) {
  StepRecord r;
  r.phase = "test";
  r.step = step;
  r.total_loss = loss;
  r.grad_norm = grad_norm;
  return r;
}

EpochRecord MakeEpoch(int64_t epoch, double val_mse) {
  EpochRecord r;
  r.phase = "test";
  r.epoch = epoch;
  r.total_loss = val_mse;
  r.val_mse = val_mse;
  return r;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(HealthMonitorTest, ForwardsRecordsAndStaysHealthyOnCleanStream) {
  CountingObserver next;
  HealthMonitor monitor(QuietConfig(), &next);
  for (int64_t i = 0; i < 50; ++i) monitor.OnStep(MakeStep(i, 1.0));
  monitor.OnEpoch(MakeEpoch(0, 0.5));
  EXPECT_EQ(next.steps(), 50);
  EXPECT_EQ(next.epochs(), 1);
  EXPECT_EQ(monitor.verdict(), HealthVerdict::kHealthy);
  EXPECT_EQ(monitor.anomaly_count(), 0);
  EXPECT_FALSE(monitor.stop_requested());
}

TEST(HealthMonitorTest, DisabledMonitorForwardsWithoutChecking) {
  HealthConfig config = QuietConfig();
  config.enabled = false;
  CountingObserver next;
  HealthMonitor monitor(config, &next);
  monitor.OnStep(MakeStep(1, kNaN));
  EXPECT_EQ(next.steps(), 1);
  EXPECT_EQ(monitor.anomaly_count(), 0);
  EXPECT_EQ(monitor.verdict(), HealthVerdict::kHealthy);
}

TEST(HealthMonitorTest, FlagsNonFiniteLossOncePerStep) {
  HealthMonitor monitor(QuietConfig());
  StepRecord r = MakeStep(1, kNaN, kNaN);  // loss AND grad broken
  monitor.OnStep(r);
  ASSERT_EQ(monitor.anomaly_count(), 1);
  EXPECT_EQ(monitor.events()[0].type, HealthEventType::kNonFinite);
  EXPECT_EQ(monitor.verdict(), HealthVerdict::kFailed);
}

TEST(HealthMonitorTest, FlagsNonFiniteLossComponent) {
  HealthMonitor monitor(QuietConfig());
  StepRecord r = MakeStep(1, 1.0);
  r.fd_loss = std::numeric_limits<double>::infinity();
  monitor.OnStep(r);
  ASSERT_EQ(monitor.anomaly_count(), 1);
  EXPECT_EQ(monitor.events()[0].type, HealthEventType::kNonFinite);
}

TEST(HealthMonitorTest, FlagsLossSpikeAgainstRollingWindow) {
  HealthConfig config = QuietConfig();
  HealthMonitor monitor(config);
  for (int64_t i = 0; i < config.spike_window; ++i) {
    monitor.OnStep(MakeStep(i, 1.0 + 1e-4 * static_cast<double>(i % 3)));
  }
  EXPECT_EQ(monitor.anomaly_count(), 0);
  monitor.OnStep(MakeStep(100, 50.0));
  ASSERT_EQ(monitor.anomaly_count(), 1);
  EXPECT_EQ(monitor.events()[0].type, HealthEventType::kLossSpike);
  EXPECT_EQ(monitor.verdict(), HealthVerdict::kWarning);
  EXPECT_FALSE(monitor.stop_requested()) << "spikes are warnings, not fatal";
}

TEST(HealthMonitorTest, SpikeWindowIsPerPhase) {
  HealthMonitor monitor(QuietConfig());
  for (int64_t i = 0; i < 64; ++i) monitor.OnStep(MakeStep(i, 1.0));
  // Same magnitude in a fresh phase: its window is empty, so no spike.
  StepRecord other = MakeStep(100, 50.0);
  other.phase = "other";
  monitor.OnStep(other);
  EXPECT_EQ(monitor.anomaly_count(), 0);
}

TEST(HealthMonitorTest, FlagsGradientExplosion) {
  HealthMonitor monitor(QuietConfig());
  monitor.OnStep(MakeStep(1, 1.0, /*grad_norm=*/1e5));
  ASSERT_EQ(monitor.anomaly_count(), 1);
  EXPECT_EQ(monitor.events()[0].type, HealthEventType::kGradExplosion);
  EXPECT_EQ(monitor.verdict(), HealthVerdict::kFailed);
}

TEST(HealthMonitorTest, FlagsGradientVanishingOncePerStreak) {
  HealthConfig config = QuietConfig();
  HealthMonitor monitor(config);
  for (int64_t i = 0; i < 3 * config.grad_vanish_patience; ++i) {
    monitor.OnStep(MakeStep(i, 1.0, /*grad_norm=*/1e-9));
  }
  EXPECT_EQ(monitor.anomaly_count(), 1) << "one event per streak, not per step";
  EXPECT_EQ(monitor.events()[0].type, HealthEventType::kGradVanishing);
  // A healthy gradient resets the streak; a new streak reports again.
  monitor.OnStep(MakeStep(100, 1.0, 1.0));
  for (int64_t i = 0; i < config.grad_vanish_patience; ++i) {
    monitor.OnStep(MakeStep(101 + i, 1.0, 1e-9));
  }
  EXPECT_EQ(monitor.anomaly_count(), 2);
}

TEST(HealthMonitorTest, FlagsPlateauAfterStagnantEpochs) {
  HealthConfig config = QuietConfig();
  HealthMonitor monitor(config);
  monitor.OnEpoch(MakeEpoch(0, 1.0));
  for (int64_t e = 1; e <= config.plateau_window; ++e) {
    monitor.OnEpoch(MakeEpoch(e, 1.0));  // zero relative improvement
  }
  ASSERT_EQ(monitor.anomaly_count(), 1);
  EXPECT_EQ(monitor.events()[0].type, HealthEventType::kPlateau);
  EXPECT_EQ(monitor.verdict(), HealthVerdict::kWarning);
}

TEST(HealthMonitorTest, ImprovingEpochsNeverPlateau) {
  HealthMonitor monitor(QuietConfig());
  double metric = 1.0;
  for (int64_t e = 0; e < 20; ++e) {
    monitor.OnEpoch(MakeEpoch(e, metric));
    metric *= 0.9;
  }
  EXPECT_EQ(monitor.anomaly_count(), 0);
}

TEST(HealthMonitorTest, FailFastStopRequestsEarlyStop) {
  HealthConfig config = QuietConfig();
  config.fail_fast = FailFastMode::kStop;
  CountingObserver next;
  HealthMonitor monitor(config, &next);
  monitor.OnStep(MakeStep(1, 1.0));
  EXPECT_FALSE(monitor.stop_requested());
  monitor.OnStep(MakeStep(2, kNaN));
  EXPECT_TRUE(monitor.stop_requested());
  EXPECT_EQ(next.steps(), 2) << "records forward even when stopping";
}

TEST(HealthMonitorTest, FailFastAfterCountsFatalsBeforeTripping) {
  HealthConfig config = QuietConfig();
  config.fail_fast = FailFastMode::kStop;
  config.fail_fast_after = 3;
  HealthMonitor monitor(config);
  monitor.OnStep(MakeStep(1, kNaN));
  monitor.OnStep(MakeStep(2, kNaN));
  EXPECT_FALSE(monitor.stop_requested());
  monitor.OnStep(MakeStep(3, kNaN));
  EXPECT_TRUE(monitor.stop_requested());
}

TEST(HealthMonitorTest, WritesEventStreamAndSummaryJsonl) {
  const std::string path = ::testing::TempDir() + "/health_events.jsonl";
  std::remove(path.c_str());
  HealthConfig config = QuietConfig();
  config.events_path = path;
  {
    HealthMonitor monitor(config);
    monitor.OnStep(MakeStep(1, kNaN));
    // Destructor finalizes: the summary line must land without an explicit
    // Finalize() call.
  }
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    ASSERT_TRUE(obs::JsonValue::Parse(line).ok()) << line;
  }
  obs::JsonValue event = obs::JsonValue::Parse(lines[0]).value();
  EXPECT_EQ(event.GetString("kind", ""), "health_event");
  EXPECT_EQ(event.GetString("type", ""), "non_finite");
  obs::JsonValue summary = obs::JsonValue::Parse(lines[1]).value();
  EXPECT_EQ(summary.GetString("kind", ""), "health_summary");
  EXPECT_EQ(summary.GetDouble("anomalies", -1), 1.0);
  std::remove(path.c_str());
}

TEST(HealthMonitorDeathTest, AbortModeDiesOnFatalAnomaly) {
  HealthConfig config = QuietConfig();
  config.fail_fast = FailFastMode::kAbort;
  EXPECT_DEATH(
      {
        HealthMonitor monitor(config);
        monitor.OnStep(MakeStep(1, kNaN));
      },
      "health watchdog fail-fast");
}

// --- Drift metrics ---------------------------------------------------------

TEST(LinearCkaTest, IdenticalFeaturesGiveOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0, -1.0, 0.5, 2.5,
                                 4.0, -2.0, 1.5, 0.0, 3.5, -0.5};
  EXPECT_NEAR(obs::LinearCka(a, a, /*rows=*/4), 1.0, 1e-9);
}

TEST(LinearCkaTest, InvariantToIsotropicScaling) {
  const std::vector<double> a = {1.0, 2.0, -1.0, 0.5, 3.0, -2.0};
  std::vector<double> b = a;
  for (double& v : b) v *= 7.0;
  EXPECT_NEAR(obs::LinearCka(a, b, /*rows=*/3), 1.0, 1e-9);
}

TEST(LinearCkaTest, DegenerateInputsGiveNaN) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> constant = {5.0, 5.0, 5.0, 5.0};
  EXPECT_TRUE(std::isnan(obs::LinearCka(a, a, /*rows=*/1))) << "rows < 2";
  EXPECT_TRUE(std::isnan(obs::LinearCka(a, constant, /*rows=*/2)))
      << "zero-variance side";
}

TEST(AttentionDivergenceTest, IdenticalMapsGiveZeroDifferentMapsPositive) {
  const std::vector<double> t = {0.7, 0.2, 0.1, 0.1, 0.8, 0.1,
                                 0.3, 0.3, 0.4, 0.2, 0.2, 0.6};
  std::vector<double> s = {0.1, 0.1, 0.8, 0.6, 0.2, 0.2,
                           0.4, 0.5, 0.1, 0.1, 0.6, 0.3};
  EXPECT_NEAR(obs::MeanAttentionDivergence(t, t, 4, 3), 0.0, 1e-9);
  EXPECT_GT(obs::MeanAttentionDivergence(t, s, 4, 3), 0.01);
}

TEST(DistillationDriftTest, TensorWrappersGuardShapes) {
  Rng rng(21);
  Tensor e = Tensor::RandNormal({4, 3, 8}, 0, 1, rng);
  EXPECT_NEAR(core::DistillationCka(e, e.Clone()), 1.0, 1e-6);
  Tensor a = tensor::Softmax(Tensor::RandNormal({4, 3, 3}, 0, 1, rng), -1);
  EXPECT_NEAR(core::DistillationAttentionDivergence(a, a.Clone()), 0.0, 1e-6);
  // Mismatched / degenerate inputs degrade to NaN instead of crashing.
  Tensor other = Tensor::RandNormal({5, 3, 8}, 0, 1, rng);
  EXPECT_TRUE(std::isnan(core::DistillationCka(e, other)));
  EXPECT_TRUE(std::isnan(core::DistillationAttentionDivergence(a, e)));
}

// --- End-to-end trainer wiring ---------------------------------------------

core::TimeKdConfig SmallModelConfig() {
  core::TimeKdConfig config;
  config.num_variables = 3;
  config.input_len = 12;
  config.horizon = 6;
  config.freq_minutes = 60;
  config.d_model = 16;
  config.num_heads = 2;
  config.encoder_layers = 1;
  config.ffn_hidden = 32;
  config.dropout = 0.0f;
  config.llm.d_model = 16;
  config.llm.num_layers = 1;
  config.llm.num_heads = 2;
  config.llm.ffn_hidden = 32;
  config.prompt.stride = 3;
  config.seed = 5;
  return config;
}

WindowDataset SmallDataset(uint64_t seed, int64_t length) {
  data::DatasetSpec spec = data::DefaultSpec(data::DatasetId::kEtth1, length);
  spec.num_variables = 3;
  spec.seed = seed;
  data::TimeSeries ts = data::MakeDataset(spec);
  data::StandardScaler scaler;
  scaler.Fit(ts);
  return WindowDataset(scaler.Transform(ts), 12, 6);
}

TEST(HealthIntegrationTest, CleanFitIsHealthyAndDistillationDriftShrinks) {
  const std::string events = ::testing::TempDir() + "/clean_run.jsonl";
  std::remove(events.c_str());
  core::TimeKd model(SmallModelConfig());
  WindowDataset train = SmallDataset(44, 120);
  core::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 8;
  tc.lr = 3e-3;
  tc.telemetry_every = 4;
  tc.health = QuietConfig();
  tc.health.events_path = events;
  obs::CountingObserver counting;
  tc.observer = &counting;
  core::FitStats stats = model.Fit(train, nullptr, tc);

  EXPECT_EQ(stats.health_anomalies, 0) << "seeded smoke run must be clean";
  EXPECT_EQ(stats.health_verdict, HealthVerdict::kHealthy);
  EXPECT_FALSE(stats.stopped_early);
  EXPECT_EQ(counting.steps(), stats.steps) << "records forward through monitor";

  // Eq. 25 pushes the student's features toward the teacher's: CKA must
  // rise monotonically across the student epochs while the attention maps
  // (Eq. 24) move closer.
  ASSERT_EQ(stats.epochs.size(), 8u);
  std::vector<double> cka;
  for (size_t e = 4; e < 8; ++e) {
    EXPECT_TRUE(std::isnan(stats.epochs[e - 4].distill_cka))
        << "teacher epochs carry no drift metrics";
    ASSERT_TRUE(std::isfinite(stats.epochs[e].distill_cka));
    cka.push_back(stats.epochs[e].distill_cka);
  }
  for (size_t i = 1; i < cka.size(); ++i) {
    EXPECT_GT(cka[i], cka[i - 1]) << "CKA not increasing at student epoch " << i;
  }
  EXPECT_LT(stats.epochs[7].distill_attn_div, stats.epochs[4].distill_attn_div);

  // Every event-stream line is valid JSON; no health_event lines, one
  // healthy summary.
  const std::vector<std::string> lines = ReadLines(events);
  ASSERT_FALSE(lines.empty());
  double anomalies = -1;
  for (const std::string& line : lines) {
    auto parsed = obs::JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const std::string kind = parsed.value().GetString("kind", "");
    EXPECT_NE(kind, "health_event");
    if (kind == "health_summary") {
      anomalies = parsed.value().GetDouble("anomalies", -1);
    }
  }
  EXPECT_EQ(anomalies, 0.0);
  std::remove(events.c_str());
}

TEST(HealthIntegrationTest, InjectedNanStopsBaselineFitWithinOneEpoch) {
  const std::string events = ::testing::TempDir() + "/nan_run.jsonl";
  const std::string html = ::testing::TempDir() + "/nan_run.html";
  std::remove(events.c_str());
  std::remove(html.c_str());

  baselines::BaselineConfig config;
  config.num_variables = 3;
  config.input_len = 12;
  config.horizon = 6;
  config.d_model = 16;
  config.num_heads = 2;
  config.encoder_layers = 1;
  config.ffn_hidden = 32;
  config.dropout = 0.0f;
  config.seed = 7;
  baselines::ITransformer model(config);
  // Poison one weight: every forward pass now yields NaN.
  model.Parameters()[0].data()[0] = std::numeric_limits<float>::quiet_NaN();

  baselines::BaselineTrainer trainer(&model);
  WindowDataset train = SmallDataset(45, 100);
  core::TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  tc.health = QuietConfig();
  tc.health.events_path = events;
  tc.health.html_report_path = html;
  tc.health.fail_fast = FailFastMode::kStop;
  baselines::BaselineFitStats stats = trainer.Fit(train, nullptr, tc);

  EXPECT_TRUE(stats.stopped_early);
  EXPECT_EQ(stats.health_verdict, HealthVerdict::kFailed);
  EXPECT_GE(stats.health_anomalies, 1);
  EXPECT_LE(stats.epochs.size(), 1u) << "fail-fast must stop within one epoch";

  // Both artifacts of the dying run stay well formed.
  const std::vector<std::string> lines = ReadLines(events);
  ASSERT_FALSE(lines.empty());
  bool saw_event = false;
  for (const std::string& line : lines) {
    auto parsed = obs::JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    saw_event |= parsed.value().GetString("kind", "") == "health_event";
  }
  EXPECT_TRUE(saw_event);
  std::ifstream in(html);
  std::string page((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(page.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(page.find("</html>"), std::string::npos);
  EXPECT_NE(page.find("failed"), std::string::npos);
  std::remove(events.c_str());
  std::remove(html.c_str());
}

}  // namespace
}  // namespace timekd
