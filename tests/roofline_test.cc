#include "obs/roofline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace timekd::obs {
namespace {

using tensor::Tensor;
namespace cost = tensor::cost;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// A fabricated machine with a ridge of exactly 10 FLOP/B, so the
// classification thresholds below are round numbers.
MachineRoofline FakeMachine() {
  MachineRoofline m;
  m.peak_flops_per_sec = 1e11;  // 100 GFLOP/s
  m.peak_bytes_per_sec = 1e10;  // 10 GB/s
  m.calibrated = true;
  m.source = "probe";
  return m;
}

// ---------------------------------------------------------------------------
// Classification math

TEST(RooflineMathTest, ArithmeticIntensityEdgeCases) {
  EXPECT_DOUBLE_EQ(ArithmeticIntensity(100, 50), 2.0);
  EXPECT_DOUBLE_EQ(ArithmeticIntensity(0, 50), 0.0);
  EXPECT_DOUBLE_EQ(ArithmeticIntensity(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(ArithmeticIntensity(1, 0)));
}

TEST(RooflineMathTest, RidgePoint) {
  EXPECT_DOUBLE_EQ(FakeMachine().RidgeFlopsPerByte(), 10.0);
  EXPECT_DOUBLE_EQ(MachineRoofline{}.RidgeFlopsPerByte(), 0.0);
}

TEST(RooflineMathTest, ComputeBoundKernel) {
  // AI 20 > ridge 10: bounded by peak FLOPs, not bandwidth. 5e10 FLOPs in
  // one second against a 1e11 peak is exactly half of attainable.
  const RooflinePoint pt =
      ClassifyRoofline(/*flops=*/50'000'000'000ull,
                       /*bytes=*/2'500'000'000ull, 1.0, FakeMachine());
  EXPECT_FALSE(pt.memory_bound);
  EXPECT_DOUBLE_EQ(pt.ai, 20.0);
  EXPECT_DOUBLE_EQ(pt.attainable_flops_per_sec, 1e11);
  EXPECT_DOUBLE_EQ(pt.pct_of_peak, 0.5);
}

TEST(RooflineMathTest, MemoryBoundKernel) {
  // AI 2 < ridge 10: attainable = ai * bandwidth = 2e10 FLOP/s.
  const RooflinePoint pt = ClassifyRoofline(
      /*flops=*/10'000'000'000ull, /*bytes=*/5'000'000'000ull, 1.0,
      FakeMachine());
  EXPECT_TRUE(pt.memory_bound);
  EXPECT_DOUBLE_EQ(pt.ai, 2.0);
  EXPECT_DOUBLE_EQ(pt.attainable_flops_per_sec, 2e10);
  EXPECT_DOUBLE_EQ(pt.pct_of_peak, 0.5);
}

TEST(RooflineMathTest, ZeroFlopKernelIsBandwidthFraction) {
  // Pure data movement (transpose): pct is achieved bytes/s over machine
  // bandwidth. 5e9 B/s on a 1e10 B/s machine = 50%.
  const RooflinePoint pt =
      ClassifyRoofline(0, /*bytes=*/5'000'000'000ull, 1.0, FakeMachine());
  EXPECT_TRUE(pt.memory_bound);
  EXPECT_DOUBLE_EQ(pt.attainable_flops_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(pt.pct_of_peak, 0.5);
}

TEST(RooflineMathTest, UncalibratedMachineOnlyReportsAi) {
  const RooflinePoint pt =
      ClassifyRoofline(100, 50, 1.0, MachineRoofline{});
  EXPECT_DOUBLE_EQ(pt.ai, 2.0);
  EXPECT_DOUBLE_EQ(pt.attainable_flops_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(pt.pct_of_peak, 0.0);
  EXPECT_FALSE(pt.memory_bound);
}

TEST(RooflineMathTest, ZeroElapsedLeavesPctZero) {
  const RooflinePoint pt = ClassifyRoofline(100, 50, 0.0, FakeMachine());
  EXPECT_DOUBLE_EQ(pt.pct_of_peak, 0.0);
}

// ---------------------------------------------------------------------------
// Calibration cache round-trip

TEST(RooflineCacheTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("roofline_cache_roundtrip.json");
  MachineRoofline m = FakeMachine();
  ASSERT_TRUE(SaveRooflineCache(m, path).ok());
  StatusOr<MachineRoofline> loaded = LoadRooflineCache(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_DOUBLE_EQ(loaded->peak_flops_per_sec, m.peak_flops_per_sec);
  EXPECT_DOUBLE_EQ(loaded->peak_bytes_per_sec, m.peak_bytes_per_sec);
  EXPECT_TRUE(loaded->calibrated);
  EXPECT_EQ(loaded->source, "cache");
  std::remove(path.c_str());
}

TEST(RooflineCacheTest, MissingFileIsNotFound) {
  StatusOr<MachineRoofline> loaded =
      LoadRooflineCache(TempPath("roofline_cache_nonexistent.json"));
  EXPECT_FALSE(loaded.ok());
}

TEST(RooflineCacheTest, RejectsForeignCalibrationKey) {
  // A calibration measured on another host/compiler/build must not be
  // reused here: hand-write a cache whose key cannot match this process.
  const std::string path = TempPath("roofline_cache_foreign.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "{\"schema_version\":1,\"key\":\"otherhost|gcc 0.0.0|opt|t1\","
      "\"peak_flops_per_sec\":1e11,\"peak_bytes_per_sec\":1e10}\n",
      f);
  std::fclose(f);
  StatusOr<MachineRoofline> loaded = LoadRooflineCache(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(RooflineCacheTest, RejectsGarbageAndNonPositivePeaks) {
  const std::string path = TempPath("roofline_cache_bad.json");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not json at all", f);
  std::fclose(f);
  EXPECT_FALSE(LoadRooflineCache(path).ok());

  MachineRoofline degenerate;
  degenerate.peak_flops_per_sec = 0.0;
  degenerate.peak_bytes_per_sec = 1e10;
  degenerate.calibrated = true;
  ASSERT_TRUE(SaveRooflineCache(degenerate, path).ok());
  EXPECT_FALSE(LoadRooflineCache(path).ok());
  std::remove(path.c_str());
}

TEST(RooflineCacheTest, CalibrationKeyNamesHostCompilerAndThreads) {
  const std::string key = RooflineCalibrationKey();
  EXPECT_NE(key.find(HostnameString()), std::string::npos);
  EXPECT_NE(key.find(CompilerVersionString()), std::string::npos);
  EXPECT_NE(key.find("|t"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Analytic traffic accounting: the kernels must credit exactly the bytes
// the ops.h cost model promises, byte for byte. Forward-only (no autograd
// tape) so backward credits cannot leak into the expectations.

class TrafficAccountingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Get().Clear();
    Profiler::Get().Enable("");  // aggregate without a file
  }
  void TearDown() override {
    Profiler::Get().Disable();
    Profiler::Get().Clear();
  }

  // The calling thread's tree from a fresh snapshot.
  static std::vector<ProfileNode> MyRoots() {
    const uint32_t tid = Tracer::CurrentThreadId();
    for (const auto& t : Profiler::Get().Snapshot().threads) {
      if (t.tid == tid) return t.roots;
    }
    return {};
  }

  static const ProfileNode* Find(const std::vector<ProfileNode>& nodes,
                                 const std::string& name) {
    for (const ProfileNode& n : nodes) {
      if (n.name == name) return &n;
    }
    return nullptr;
  }
};

TEST_F(TrafficAccountingTest, MatMulCreditsExactBytes) {
  Tensor a = Tensor::Ones({2, 3});
  Tensor b = Tensor::Ones({3, 4});
  {
    TIMEKD_TRACE_SCOPE("test/matmul");
    Tensor y = tensor::MatMul(a, b);
    ASSERT_EQ(y.numel(), 8);
  }
  const auto roots = MyRoots();
  const ProfileNode* n = Find(roots, "test/matmul");
  ASSERT_NE(n, nullptr);
  // 2*m*k*n = 2*2*3*4 FLOPs; reads a (6) + b (12) elements, writes 8.
  EXPECT_EQ(n->flops, cost::MatMulFlops(1, 2, 3, 4));
  EXPECT_EQ(n->flops, 48u);
  EXPECT_EQ(n->read_bytes, (6u + 12u) * cost::kBytesPerElement);
  EXPECT_EQ(n->write_bytes, 8u * cost::kBytesPerElement);
}

TEST_F(TrafficAccountingTest, SoftmaxCreditsExactBytes) {
  Tensor x = Tensor::Ones({4, 8});
  {
    TIMEKD_TRACE_SCOPE("test/softmax");
    Tensor y = tensor::Softmax(x, -1);
    ASSERT_EQ(y.numel(), 32);
  }
  const auto roots = MyRoots();
  const ProfileNode* n = Find(roots, "test/softmax");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->flops, 32u * cost::kSoftmaxFlopsPerElement);
  EXPECT_EQ(n->read_bytes, 32u * cost::kBytesPerElement);
  EXPECT_EQ(n->write_bytes, 32u * cost::kBytesPerElement);
}

TEST_F(TrafficAccountingTest, LayerNormCreditsExactBytes) {
  const int64_t rows = 3;
  const int64_t d = 16;
  Tensor x = Tensor::Ones({rows, d});
  Tensor gamma = Tensor::Ones({d});
  Tensor beta = Tensor::Zeros({d});
  {
    TIMEKD_TRACE_SCOPE("test/layernorm");
    Tensor y = tensor::LayerNorm(x, gamma, beta, 1e-5f);
    ASSERT_EQ(y.numel(), rows * d);
  }
  const auto roots = MyRoots();
  const ProfileNode* n = Find(roots, "test/layernorm");
  ASSERT_NE(n, nullptr);
  const uint64_t numel = static_cast<uint64_t>(rows * d);
  EXPECT_EQ(n->flops, numel * cost::kLayerNormFlopsPerElement);
  // Reads x plus gamma and beta; writes the output plus the per-row
  // mu/inv_sigma caches kept for backward.
  EXPECT_EQ(n->read_bytes, (numel + 2 * d) * cost::kBytesPerElement);
  EXPECT_EQ(n->write_bytes, (numel + 2 * rows) * cost::kBytesPerElement);
}

TEST_F(TrafficAccountingTest, TransposeIsPureTraffic) {
  Tensor x = Tensor::Ones({5, 7});
  {
    TIMEKD_TRACE_SCOPE("test/transpose");
    Tensor y = tensor::Transpose(x, 0, 1);
    ASSERT_EQ(y.numel(), 35);
  }
  const auto roots = MyRoots();
  const ProfileNode* n = Find(roots, "test/transpose");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->flops, 0u);
  EXPECT_EQ(n->read_bytes, 35u * cost::kBytesPerElement);
  EXPECT_EQ(n->write_bytes, 35u * cost::kBytesPerElement);
}

}  // namespace
}  // namespace timekd::obs
