// Violation class 4 — a capability acquired but never released (lock
// leak: every path out of the function still holds mu_). MUST NOT compile
// under clang -Werror=thread-safety-analysis (WILL_FAIL ctest entry).
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) TIMEKD_EXCLUDES(mu_) {
    mu_.Lock();
    balance_ += amount;
    // the bug: no Unlock() on any path out of this function
  }

 private:
  timekd::Mutex mu_;
  int balance_ TIMEKD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
