// Violation class 2 — calling a TIMEKD_REQUIRES function without holding
// the required mutex. MUST NOT compile under clang
// -Werror=thread-safety-analysis (WILL_FAIL ctest entry).
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void DepositLocked(int amount) TIMEKD_REQUIRES(mu_) { balance_ += amount; }

  // The bug: the precondition of DepositLocked is not established.
  void Deposit(int amount) { DepositLocked(amount); }

 private:
  timekd::Mutex mu_;
  int balance_ TIMEKD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
