// Violation class 1 — unlocked guarded access. MUST NOT compile under
// clang -Werror=thread-safety-analysis: a TIMEKD_GUARDED_BY field is
// written without holding its mutex. The ctest entry building this target
// is WILL_FAIL; a successful compile means the analysis lost its teeth.
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  // No lock taken: writing balance_ here is the bug the analysis rejects.
  void Deposit(int amount) { balance_ += amount; }

 private:
  timekd::Mutex mu_;
  int balance_ TIMEKD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
