// Violation class 3 — acquiring a capability that is already held
// (self-deadlock on a non-recursive mutex). MUST NOT compile under clang
// -Werror=thread-safety-analysis (WILL_FAIL ctest entry).
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) TIMEKD_EXCLUDES(mu_) {
    timekd::MutexLock outer(mu_);
    timekd::MutexLock inner(mu_);  // the bug: mu_ is already held
    balance_ += amount;
  }

 private:
  timekd::Mutex mu_;
  int balance_ TIMEKD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
