// Positive control for the negative-compile harness: idiomatic use of the
// annotation layer (common/thread_annotations.h) must compile under every
// compiler — GCC expands the attributes away, clang must find it clean
// under -Werror=thread-safety-analysis. If this target ever fails while
// the violation targets "pass", the harness itself is broken.
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) TIMEKD_EXCLUDES(mu_) {
    timekd::MutexLock lock(mu_);
    balance_ += amount;
  }

  int balance() TIMEKD_EXCLUDES(mu_) {
    timekd::MutexLock lock(mu_);
    return balance_;
  }

  // Callers must already hold mu_; the analysis checks every call site.
  void DepositLocked(int amount) TIMEKD_REQUIRES(mu_) { balance_ += amount; }

  void DepositTwiceLocked(int amount) TIMEKD_EXCLUDES(mu_) {
    mu_.Lock();
    DepositLocked(amount);
    DepositLocked(amount);
    mu_.Unlock();
  }

 private:
  timekd::Mutex mu_;
  int balance_ TIMEKD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.DepositTwiceLocked(2);
  return account.balance() == 5 ? 0 : 1;
}
