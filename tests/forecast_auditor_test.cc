// ForecastAuditor contract: per-horizon error aggregation on hand-computed
// windows, NaN coverage before warmup and convergence toward nominal after,
// forecast/* gauge publishing, and the "calibration" JSONL record round-
// tripping through MergeRunHistoryFromJsonl into the HTML report's
// RunHistory.

#include "core/forecast_auditor.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"

namespace timekd::core {
namespace {

TEST(ForecastAuditorTest, InactiveUntilBeginRun) {
  ForecastAuditor auditor;
  EXPECT_FALSE(auditor.active());
  auditor.BeginRun(/*horizon=*/4, /*channels=*/2);
  EXPECT_TRUE(auditor.active());
  const ForecastAuditor::Summary s = auditor.GetSummary();
  EXPECT_EQ(s.windows, 0);
  EXPECT_EQ(s.horizon, 4);
  EXPECT_EQ(s.channels, 2);
}

TEST(ForecastAuditorTest, PerHorizonErrorsMatchHandComputation) {
  ForecastAuditor auditor;
  auditor.BeginRun(/*horizon=*/2, /*channels=*/2);
  // Window layout is [t * channels + v]. Step 0 errors: +0.5, -0.5;
  // step 1 errors: +1.0, -2.0.
  const std::vector<float> pred = {1.5f, 0.5f, 3.0f, 0.0f};
  const std::vector<float> truth = {1.0f, 1.0f, 2.0f, 2.0f};
  auditor.ObserveWindow(pred.data(), truth.data());

  const ForecastAuditor::Summary s = auditor.GetSummary();
  EXPECT_EQ(s.windows, 1);
  ASSERT_EQ(s.per_horizon_mse.size(), 2u);
  ASSERT_EQ(s.per_horizon_mae.size(), 2u);
  EXPECT_NEAR(s.per_horizon_mse[0], (0.25 + 0.25) / 2.0, 1e-6);
  EXPECT_NEAR(s.per_horizon_mse[1], (1.0 + 4.0) / 2.0, 1e-6);
  EXPECT_NEAR(s.per_horizon_mae[0], 0.5, 1e-6);
  EXPECT_NEAR(s.per_horizon_mae[1], 1.5, 1e-6);
  EXPECT_NEAR(s.mse, (0.25 + 0.25 + 1.0 + 4.0) / 4.0, 1e-6);
  EXPECT_NEAR(s.mae, (0.5 + 0.5 + 1.0 + 2.0) / 4.0, 1e-6);
}

TEST(ForecastAuditorTest, CoverageIsNaNBeforeWarmup) {
  ForecastAuditor auditor;
  auditor.BeginRun(/*horizon=*/1, /*channels=*/1);
  const float pred = 1.0f;
  const float truth = 1.1f;
  for (int64_t i = 0; i < ForecastAuditor::kCoverageWarmup - 1; ++i) {
    auditor.ObserveWindow(&pred, &truth);
  }
  const ForecastAuditor::Summary s = auditor.GetSummary();
  EXPECT_TRUE(std::isnan(s.coverage80));
  EXPECT_TRUE(std::isnan(s.coverage95));
  ASSERT_EQ(s.per_horizon_coverage95.size(), 1u);
  EXPECT_TRUE(std::isnan(s.per_horizon_coverage95[0]));
}

TEST(ForecastAuditorTest, CoverageConvergesTowardNominalOnStationaryErrors) {
  ForecastAuditor auditor;
  auditor.BeginRun(/*horizon=*/1, /*channels=*/1);
  // Deterministic pseudo-residuals from a fixed linear-congruential
  // sequence (no std::random_device; determinism rule). Uniform-ish
  // magnitudes in [0, 1): the empirical q80/q95 of past residuals should
  // then cover ~80%/95% of future ones.
  uint64_t state = 12345;
  int64_t scored = 0;
  const int64_t total = 4000;
  for (int64_t i = 0; i < total; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>((state >> 33) & 0xFFFFFFFF) / 4294967296.0;
    const float truth = 0.0f;
    const float pred = static_cast<float>(u);  // |error| == u
    auditor.ObserveWindow(&pred, &truth);
    if (i >= ForecastAuditor::kCoverageWarmup) ++scored;
  }
  ASSERT_GT(scored, 1000);
  const ForecastAuditor::Summary s = auditor.GetSummary();
  EXPECT_FALSE(std::isnan(s.coverage80));
  EXPECT_FALSE(std::isnan(s.coverage95));
  // Bucketed quantile interpolation + finite sample: generous tolerance,
  // but tight enough to catch an off-by-one-quantile or inverted test.
  EXPECT_NEAR(s.coverage80, 0.80, 0.10);
  EXPECT_NEAR(s.coverage95, 0.95, 0.05);
  EXPECT_GT(s.coverage95, s.coverage80);
}

TEST(ForecastAuditorTest, BeginRunResetsState) {
  ForecastAuditor auditor;
  auditor.BeginRun(2, 1);
  const std::vector<float> pred = {2.0f, 2.0f};
  const std::vector<float> truth = {1.0f, 1.0f};
  auditor.ObserveWindow(pred.data(), truth.data());
  auditor.ObserveDivergence(0.9, 0.1);
  EXPECT_EQ(auditor.GetSummary().windows, 1);

  auditor.BeginRun(3, 4);
  const ForecastAuditor::Summary s = auditor.GetSummary();
  EXPECT_EQ(s.windows, 0);
  EXPECT_EQ(s.horizon, 3);
  EXPECT_EQ(s.channels, 4);
  EXPECT_EQ(s.per_horizon_mse.size(), 3u);
  EXPECT_NEAR(s.per_horizon_mse[0], 0.0, 1e-12);
}

TEST(ForecastAuditorTest, PublishesForecastGauges) {
  ForecastAuditor auditor;
  auditor.BeginRun(/*horizon=*/2, /*channels=*/1);
  const std::vector<float> pred = {1.0f, 1.0f};
  const std::vector<float> truth = {0.0f, 2.0f};
  auditor.ObserveWindow(pred.data(), truth.data());
  auditor.ObserveDivergence(/*cka=*/0.87, /*attn_div=*/0.05);
  auditor.PublishGauges();

  obs::MetricRegistry& reg = obs::GlobalMetrics();
  EXPECT_EQ(reg.GetGauge("forecast/windows")->value(), 1.0);
  EXPECT_EQ(reg.GetGauge("forecast/horizon")->value(), 2.0);
  EXPECT_EQ(reg.GetGauge("forecast/channels")->value(), 1.0);
  EXPECT_NEAR(reg.GetGauge("forecast/mse")->value(), 1.0, 1e-9);
  EXPECT_NEAR(reg.GetGauge("forecast/mae")->value(), 1.0, 1e-9);
  EXPECT_NEAR(reg.GetGauge("forecast/cka")->value(), 0.87, 1e-9);
  EXPECT_NEAR(reg.GetGauge("forecast/attn_div")->value(), 0.05, 1e-9);
}

TEST(ForecastAuditorTest, CalibrationRecordRoundTripsThroughRunHistory) {
  ForecastAuditor auditor;
  auditor.BeginRun(/*horizon=*/2, /*channels=*/2);
  const std::vector<float> pred = {1.5f, 0.5f, 3.0f, 0.0f};
  const std::vector<float> truth = {1.0f, 1.0f, 2.0f, 2.0f};
  auditor.ObserveWindow(pred.data(), truth.data());
  auditor.ObserveDivergence(0.9, 0.2);

  const std::string json = auditor.CalibrationRecordJson().ToString();
  StatusOr<obs::JsonValue> parsed = obs::JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  EXPECT_EQ(parsed.value().GetString("kind", ""), "calibration");

  // Round trip through the JSONL reader into the report's RunHistory.
  const std::string path = testing::TempDir() + "/calibration_record.jsonl";
  {
    std::ofstream out(path);
    out << json << "\n";
  }
  obs::RunHistory history;
  ASSERT_TRUE(obs::MergeRunHistoryFromJsonl(path, &history).ok());
  std::remove(path.c_str());

  EXPECT_EQ(history.calibration.windows, 1);
  EXPECT_EQ(history.calibration.horizon, 2);
  EXPECT_EQ(history.calibration.channels, 2);
  EXPECT_NEAR(history.calibration.mse, (0.25 + 0.25 + 1.0 + 4.0) / 4.0,
              1e-6);
  ASSERT_EQ(history.calibration.per_horizon_mse.size(), 2u);
  EXPECT_NEAR(history.calibration.per_horizon_mse[1], 2.5, 1e-6);
  // One window < warmup: coverage comes back NaN (serialized as a string
  // token the reader maps back to NaN).
  EXPECT_TRUE(std::isnan(history.calibration.coverage95));

  // And the HTML report renders a calibration section for it.
  history.title = "round trip";
  const std::string html = obs::RenderHtmlReport(history);
  EXPECT_NE(html.find("alibration"), std::string::npos);
}

TEST(ForecastAuditorTest, GlobalAuditorIsSingleton) {
  ForecastAuditor& a = GlobalForecastAuditor();
  ForecastAuditor& b = GlobalForecastAuditor();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace timekd::core
