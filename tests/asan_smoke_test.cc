// Fast ASan+UBSan smoke subset. In the default (unsanitized) build this
// file is compiled into its own executable with -fsanitize=address,undefined
// applied at the target level (see tests/CMakeLists.txt), so a plain
// `ctest` run catches memory errors in the tensor core without a separate
// sanitizer build. The full sanitizer matrix lives in tools/check.sh.
//
// Keep this suite small (a few hundred ms): it exercises the allocation
// and indexing patterns that historically hide heap bugs — broadcast
// offset math, transpose striding, slice/concat copies, backward-pass
// scatter — not the full model zoo.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace timekd {
namespace {

using tensor::Tensor;

TEST(AsanSmokeTest, BroadcastBinaryForwardBackward) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6})
                 .set_requires_grad(true);
  Tensor b = Tensor::FromVector({3}, {10, 20, 30}).set_requires_grad(true);
  Tensor y = tensor::Mul(tensor::Add(a, b), b);
  Tensor loss = tensor::Sum(y);
  loss.Backward();
  ASSERT_EQ(a.grad().size(), 6u);
  ASSERT_EQ(b.grad().size(), 3u);
  for (float g : a.grad()) EXPECT_TRUE(std::isfinite(g));
  for (float g : b.grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(AsanSmokeTest, BatchedMatMulSoftmaxBackward) {
  Rng rng(7);
  Tensor a = Tensor::RandUniform({2, 3, 4}, -1.0f, 1.0f, rng)
                 .set_requires_grad(true);
  Tensor b = Tensor::RandUniform({2, 4, 5}, -1.0f, 1.0f, rng)
                 .set_requires_grad(true);
  Tensor y = tensor::Softmax(tensor::MatMul(a, b), -1);
  tensor::Mean(y).Backward();
  ASSERT_EQ(a.grad().size(), 24u);
  ASSERT_EQ(b.grad().size(), 40u);
}

TEST(AsanSmokeTest, TransposeSliceConcatRoundTrip) {
  Rng rng(11);
  Tensor x = Tensor::RandUniform({3, 4, 5}, -1.0f, 1.0f, rng);
  Tensor t = tensor::Transpose(x, 0, 2);
  ASSERT_EQ(t.size(0), 5);
  Tensor left = tensor::Slice(x, 2, 0, 2);
  Tensor right = tensor::Slice(x, 2, 2, 3);
  Tensor joined = tensor::Concat({left, right}, 2);
  ASSERT_EQ(joined.numel(), x.numel());
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(joined.at(i), x.at(i));
  }
}

TEST(AsanSmokeTest, NormalizationAndLossBackward) {
  Rng rng(13);
  Tensor x = Tensor::RandUniform({4, 8}, -2.0f, 2.0f, rng)
                 .set_requires_grad(true);
  Tensor gamma = Tensor::Ones({8}).set_requires_grad(true);
  Tensor beta = Tensor::Zeros({8}).set_requires_grad(true);
  Tensor normed = tensor::LayerNorm(x, gamma, beta, 1e-5f);
  Tensor target = Tensor::Zeros({4, 8});
  tensor::MseLoss(normed, target).Backward();
  ASSERT_EQ(x.grad().size(), 32u);
  ASSERT_EQ(gamma.grad().size(), 8u);
}

TEST(AsanSmokeTest, EmbeddingEdgeIdsAndBackward) {
  Tensor w = Tensor::FromVector({3, 2}, {0, 1, 2, 3, 4, 5})
                 .set_requires_grad(true);
  // First and last valid ids — one past either end is a heap error the
  // always-on check turns into an abort and ASan would flag regardless.
  Tensor e = tensor::EmbeddingLookup(w, {0, 2, 2, 0});
  tensor::Sum(e).Backward();
  ASSERT_EQ(w.grad().size(), 6u);
  EXPECT_EQ(w.grad()[0], 2.0f);
  EXPECT_EQ(w.grad()[4], 2.0f);
}

TEST(AsanSmokeTest, PadCumSumReductions) {
  Rng rng(17);
  Tensor x = Tensor::RandUniform({2, 5}, -1.0f, 1.0f, rng)
                 .set_requires_grad(true);
  Tensor padded = tensor::PadLastDim(x, 2, 3, 0.5f);
  ASSERT_EQ(padded.size(-1), 10);
  Tensor summed = tensor::SumDim(tensor::CumSum(padded, 1), 1, false);
  tensor::Sum(summed).Backward();
  ASSERT_EQ(x.grad().size(), 10u);
}

}  // namespace
}  // namespace timekd
