// Prometheus text-exposition contract of obs::MetricsExporter: a strict
// stdlib-only parser round-trips every metric type the renderer emits
// (counters, gauges incl. NaN/Inf, histograms with cumulative buckets and
// quantile series), rejects malformed exposition, and a live TCP scrape of
// the blocking endpoint returns a parseable page while another thread is
// concurrently hammering the registry — the "scrape during a running eval"
// production scenario.

#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"

namespace timekd::obs {
namespace {

// --- Minimal strict Prometheus text-format 0.0.4 parser (stdlib only) ------

struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

struct PromPage {
  std::map<std::string, std::string> types;  // metric family -> type
  std::vector<PromSample> samples;
};

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9');
}

/// Parses a value token; NaN/+Inf/-Inf per the exposition format, else a
/// full-consume strtod. Returns false on anything else.
bool ParseValue(const std::string& token, double* out) {
  if (token == "NaN") {
    *out = std::nan("");
    return true;
  }
  if (token == "+Inf" || token == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

/// Strict parse of one exposition page. On failure returns false and puts
/// a line-anchored message into *error.
bool ParsePromPage(const std::string& text, PromPage* page,
                   std::string* error) {
  if (text.empty() || text.back() != '\n') {
    *error = "exposition must end with a newline";
    return false;
  }
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string where = "line " + std::to_string(lineno) + ": ";
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::string type_prefix = "# TYPE ";
      if (line.rfind(type_prefix, 0) == 0) {
        std::istringstream fields(line.substr(type_prefix.size()));
        std::string name, type, extra;
        fields >> name >> type;
        if (name.empty() || type.empty() || (fields >> extra)) {
          *error = where + "malformed TYPE line";
          return false;
        }
        if (page->types.count(name) != 0) {
          *error = where + "duplicate TYPE for " + name;
          return false;
        }
        page->types[name] = type;
      }
      continue;  // other comments tolerated
    }
    PromSample sample;
    size_t i = 0;
    if (!IsNameStart(line[i])) {
      *error = where + "bad metric name start";
      return false;
    }
    while (i < line.size() && IsNameChar(line[i])) ++i;
    sample.name = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        size_t k = i;
        while (k < line.size() && IsNameChar(line[k])) ++k;
        if (k == i || k >= line.size() || line[k] != '=' ||
            k + 1 >= line.size() || line[k + 1] != '"') {
          *error = where + "malformed label";
          return false;
        }
        const std::string key = line.substr(i, k - i);
        size_t v = k + 2;
        std::string value;
        while (v < line.size() && line[v] != '"') {
          if (line[v] == '\\') ++v;  // escaped char
          if (v < line.size()) value += line[v];
          ++v;
        }
        if (v >= line.size()) {
          *error = where + "unterminated label value";
          return false;
        }
        sample.labels[key] = value;
        i = v + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size() || line[i] != '}') {
        *error = where + "unterminated label set";
        return false;
      }
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') {
      *error = where + "missing value separator";
      return false;
    }
    const std::string rest = line.substr(i + 1);
    if (rest.find(' ') != std::string::npos) {
      // Timestamps are legal Prometheus but this renderer never emits
      // them, so the strict parser treats a second token as malformed.
      *error = where + "unexpected second token";
      return false;
    }
    if (!ParseValue(rest, &sample.value)) {
      *error = where + "bad value token '" + rest + "'";
      return false;
    }
    page->samples.push_back(std::move(sample));
  }
  return true;
}

const PromSample* FindSample(const PromPage& page, const std::string& name,
                             const std::string& label_key = "",
                             const std::string& label_value = "") {
  for (const PromSample& s : page.samples) {
    if (s.name != name) continue;
    if (!label_key.empty()) {
      auto it = s.labels.find(label_key);
      if (it == s.labels.end() || it->second != label_value) continue;
    }
    return &s;
  }
  return nullptr;
}

TEST(PrometheusNameTest, ManglingIsPureSlashSubstitution) {
  EXPECT_EQ(PrometheusName("tensor/matmul_flops"),
            "timekd_tensor_matmul_flops");
  EXPECT_EQ(PrometheusName("health/verdict"), "timekd_health_verdict");
  EXPECT_EQ(PrometheusName("a/b/c_d"), "timekd_a_b_c_d");
}

TEST(RenderPrometheusTextTest, CounterAndGaugeRoundTrip) {
  MetricRegistry reg;
  reg.GetCounter("eval/windows")->Increment(42);
  reg.GetGauge("fit/lr")->Set(2.5e-3);

  PromPage page;
  std::string error;
  ASSERT_TRUE(ParsePromPage(RenderPrometheusText(reg.Snapshot()), &page,
                            &error))
      << error;
  EXPECT_EQ(page.types.at("timekd_eval_windows"), "counter");
  EXPECT_EQ(page.types.at("timekd_fit_lr"), "gauge");
  const PromSample* counter = FindSample(page, "timekd_eval_windows");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 42.0);
  const PromSample* gauge = FindSample(page, "timekd_fit_lr");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 2.5e-3);
}

TEST(RenderPrometheusTextTest, NonFiniteGaugesUsePrometheusTokens) {
  MetricRegistry reg;
  reg.GetGauge("fit/nan")->Set(std::nan(""));
  reg.GetGauge("fit/pinf")->Set(std::numeric_limits<double>::infinity());
  reg.GetGauge("fit/ninf")->Set(-std::numeric_limits<double>::infinity());

  const std::string text = RenderPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("timekd_fit_nan NaN\n"), std::string::npos);
  EXPECT_NE(text.find("timekd_fit_pinf +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("timekd_fit_ninf -Inf\n"), std::string::npos);

  PromPage page;
  std::string error;
  ASSERT_TRUE(ParsePromPage(text, &page, &error)) << error;
  EXPECT_TRUE(std::isnan(FindSample(page, "timekd_fit_nan")->value));
  EXPECT_TRUE(std::isinf(FindSample(page, "timekd_fit_pinf")->value));
}

TEST(RenderPrometheusTextTest, HistogramRoundTripWithQuantiles) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("eval/latency", {0.1, 1.0, 10.0});
  for (int i = 0; i < 50; ++i) h->Observe(0.05);   // first bucket
  for (int i = 0; i < 40; ++i) h->Observe(0.5);    // second bucket
  for (int i = 0; i < 10; ++i) h->Observe(100.0);  // overflow bucket

  PromPage page;
  std::string error;
  ASSERT_TRUE(ParsePromPage(RenderPrometheusText(reg.Snapshot()), &page,
                            &error))
      << error;
  EXPECT_EQ(page.types.at("timekd_eval_latency"), "histogram");
  EXPECT_EQ(page.types.at("timekd_eval_latency_quantile"), "gauge");

  // Buckets are cumulative and non-decreasing; the +Inf bucket equals
  // _count (the renderer's internal-consistency guarantee).
  const PromSample* b01 =
      FindSample(page, "timekd_eval_latency_bucket", "le", "0.1");
  const PromSample* b1 =
      FindSample(page, "timekd_eval_latency_bucket", "le", "1");
  const PromSample* binf =
      FindSample(page, "timekd_eval_latency_bucket", "le", "+Inf");
  const PromSample* count = FindSample(page, "timekd_eval_latency_count");
  const PromSample* sum = FindSample(page, "timekd_eval_latency_sum");
  ASSERT_NE(b01, nullptr);
  ASSERT_NE(b1, nullptr);
  ASSERT_NE(binf, nullptr);
  ASSERT_NE(count, nullptr);
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(b01->value, 50.0);
  EXPECT_EQ(b1->value, 90.0);
  EXPECT_EQ(binf->value, 100.0);
  EXPECT_EQ(count->value, binf->value);
  EXPECT_NEAR(sum->value, 50 * 0.05 + 40 * 0.5 + 10 * 100.0, 1e-9);

  const PromSample* p50 =
      FindSample(page, "timekd_eval_latency_quantile", "quantile", "0.5");
  const PromSample* p99 =
      FindSample(page, "timekd_eval_latency_quantile", "quantile", "0.99");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p99, nullptr);
  EXPECT_GT(p99->value, p50->value);
}

TEST(PromParserTest, RejectsMalformedExposition) {
  PromPage page;
  std::string error;
  // Not newline-terminated.
  EXPECT_FALSE(ParsePromPage("timekd_x 1", &page, &error));
  // Missing value.
  EXPECT_FALSE(ParsePromPage("timekd_x\n", &page, &error));
  // Garbage value token.
  EXPECT_FALSE(ParsePromPage("timekd_x 1.2.3\n", &page, &error));
  // Unterminated label value.
  EXPECT_FALSE(ParsePromPage("timekd_x{le=\"0.1} 1\n", &page, &error));
  // Bad name start.
  EXPECT_FALSE(ParsePromPage("9timekd_x 1\n", &page, &error));
  // Malformed TYPE line.
  EXPECT_FALSE(ParsePromPage("# TYPE timekd_x\n", &page, &error));
}

TEST(MetricsExporterTest, StartRejectsInconsistentOptions) {
  MetricsExporterOptions options;  // everything off
  MetricsExporter exporter(options);
  EXPECT_FALSE(exporter.Start().ok());

  MetricsExporterOptions periodic;
  periodic.export_every_ms = 10;  // but no snapshot_path
  MetricsExporter exporter2(periodic);
  EXPECT_FALSE(exporter2.Start().ok());
}

/// Scrapes 127.0.0.1:port once over a raw socket; returns the full HTTP
/// response (headers + body), empty on failure.
std::string ScrapeOnce(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)!::write(fd, request, sizeof(request) - 1);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsExporterTest, LiveScrapeDuringConcurrentRecording) {
  GlobalMetrics().GetCounter("eval/windows")->Increment();

  MetricsExporterOptions options;
  options.port = 0;  // ephemeral
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());
  ASSERT_GT(exporter.bound_port(), 0);

  // A stand-in for a running evaluation: hammer the registry (counters,
  // gauges and a histogram) from another thread for the whole scrape.
  std::atomic<bool> stop{false};
  // The probe thread IS the scenario under test (registry writes racing a
  // scrape), so the pool would defeat the point.
  std::thread writer([&stop] {  // timekd-lint: allow(raw-thread)
    Histogram* h =
        GlobalMetrics().GetHistogram("eval/scrape_probe", {0.1, 1.0});
    Gauge* g = GlobalMetrics().GetGauge("eval/scrape_gauge");
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      h->Observe(static_cast<double>(i % 3));
      g->Set(static_cast<double>(i));
      ++i;
    }
  });

  std::string response;
  for (int attempt = 0; attempt < 50 && response.empty(); ++attempt) {
    response = ScrapeOnce(exporter.bound_port());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  ASSERT_FALSE(response.empty());

  ASSERT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);

  PromPage page;
  std::string error;
  ASSERT_TRUE(ParsePromPage(body, &page, &error)) << error;
  EXPECT_NE(FindSample(page, "timekd_eval_windows"), nullptr);
  // Histogram internal consistency held even under concurrent writes.
  const PromSample* binf =
      FindSample(page, "timekd_eval_scrape_probe_bucket", "le", "+Inf");
  const PromSample* count =
      FindSample(page, "timekd_eval_scrape_probe_count");
  if (binf != nullptr && count != nullptr) {
    EXPECT_EQ(binf->value, count->value);
  }
  EXPECT_GE(exporter.scrape_count(), 1u);

  exporter.Stop();
  EXPECT_FALSE(exporter.running());
}

TEST(MetricsExporterTest, PeriodicSnapshotWritesParseableJson) {
  GlobalMetrics().GetCounter("eval/windows")->Increment();
  const std::string path =
      testing::TempDir() + "/exporter_snapshot_test.json";
  std::remove(path.c_str());

  MetricsExporterOptions options;
  options.export_every_ms = 20;
  options.snapshot_path = path;
  MetricsExporter exporter(options);
  ASSERT_TRUE(exporter.Start().ok());

  // Wait (bounded) for at least one snapshot to appear.
  std::string contents;
  for (int attempt = 0; attempt < 200 && contents.empty(); ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::ifstream in(path);
    if (in.is_open()) {
      std::ostringstream ss;
      ss << in.rdbuf();
      contents = ss.str();
    }
  }
  exporter.Stop();
  ASSERT_FALSE(contents.empty()) << "no snapshot written to " << path;
  StatusOr<JsonValue> parsed = JsonValue::Parse(contents);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed.value().Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->GetDouble("eval/windows", 0.0), 1.0);
}

}  // namespace
}  // namespace timekd::obs
