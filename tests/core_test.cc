#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/clm.h"
#include "core/config.h"
#include "core/distillation.h"
#include "core/sca.h"
#include "core/student.h"
#include "core/teacher.h"
#include "core/timekd.h"
#include "data/datasets.h"
#include "data/window_dataset.h"
#include "tensor/ops.h"

namespace timekd::core {
namespace {

using data::DatasetId;
using data::WindowDataset;
using tensor::Shape;
using tensor::Sum;
using tensor::Tensor;

/// A small, fast config shared by the core tests.
TimeKdConfig SmallConfig() {
  TimeKdConfig config;
  config.num_variables = 3;
  config.input_len = 12;
  config.horizon = 6;
  config.freq_minutes = 60;
  config.d_model = 16;
  config.num_heads = 2;
  config.encoder_layers = 1;
  config.ffn_hidden = 32;
  config.dropout = 0.0f;
  config.llm.d_model = 16;
  config.llm.num_layers = 1;
  config.llm.num_heads = 2;
  config.llm.ffn_hidden = 32;
  config.prompt.stride = 3;
  config.seed = 5;
  return config;
}

WindowDataset SmallDataset(uint64_t seed = 42, int64_t length = 80) {
  data::DatasetSpec spec = data::DefaultSpec(DatasetId::kEtth1, length);
  spec.num_variables = 3;
  spec.seed = seed;
  data::TimeSeries ts = data::MakeDataset(spec);
  data::StandardScaler scaler;
  scaler.Fit(ts);
  return WindowDataset(scaler.Transform(ts), 12, 6);
}

TEST(ScaTest, OutputShapeAdaptsLlmWidth) {
  Rng rng(1);
  SubtractiveCrossAttention sca(/*d_llm=*/24, /*d_model=*/8, 16, rng);
  Tensor l_gt = Tensor::RandNormal({2, 5, 24}, 0, 1, rng);
  Tensor l_hd = Tensor::RandNormal({2, 5, 24}, 0, 1, rng);
  EXPECT_EQ(sca.Forward(l_gt, l_hd).shape(), (Shape{2, 5, 8}));
}

TEST(ScaTest, GradientsFlowToBothInputs) {
  Rng rng(2);
  SubtractiveCrossAttention sca(8, 8, 16, rng);
  Tensor l_gt = Tensor::RandNormal({1, 3, 8}, 0, 1, rng).set_requires_grad(true);
  Tensor l_hd = Tensor::RandNormal({1, 3, 8}, 0, 1, rng).set_requires_grad(true);
  Sum(sca.Forward(l_gt, l_hd)).Backward();
  double g_gt = 0.0;
  double g_hd = 0.0;
  for (float g : l_gt.grad()) g_gt += std::fabs(g);
  for (float g : l_hd.grad()) g_hd += std::fabs(g);
  EXPECT_GT(g_gt, 0.0);
  EXPECT_GT(g_hd, 0.0);
}

TEST(ScaTest, RemovesSharedComponent) {
  // When GT and HD are identical, the refined embedding should differ from
  // the raw adapter output (the shared component is subtracted).
  Rng rng(3);
  SubtractiveCrossAttention sca(8, 8, 16, rng);
  Tensor shared = Tensor::RandNormal({1, 4, 8}, 0, 1, rng);
  Tensor out_same = sca.Forward(shared, shared);
  Tensor zero_hd = Tensor::Zeros({1, 4, 8});
  Tensor out_nohd = sca.Forward(shared, zero_hd);
  float diff = 0.0f;
  for (int64_t i = 0; i < out_same.numel(); ++i) {
    diff += std::fabs(out_same.at(i) - out_nohd.at(i));
  }
  EXPECT_GT(diff, 1e-3f) << "HD content had no effect on subtraction";
}

TEST(DirectSubtractionTest, IdenticalInputsCancel) {
  Rng rng(4);
  DirectSubtraction direct(8, 6, rng);
  Tensor x = Tensor::RandNormal({1, 3, 8}, 0, 1, rng);
  Tensor out = direct.Forward(x, x);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out.at(i), 0.0f, 1e-5f);
  }
}

TEST(ClmTest, EncodeSampleShapes) {
  TimeKdConfig config = SmallConfig();
  Clm clm(config);
  WindowDataset ds = SmallDataset();
  PromptEmbeddings e = clm.EncodeSample(ds, 0);
  EXPECT_EQ(e.gt.shape(), (Shape{3, 16}));
  EXPECT_EQ(e.hd.shape(), (Shape{3, 16}));
  EXPECT_FALSE(e.gt.requires_grad()) << "CLM embeddings must be constants";
}

TEST(ClmTest, PrivilegedEmbeddingsDifferFromHistorical) {
  TimeKdConfig config = SmallConfig();
  Clm clm(config);
  WindowDataset ds = SmallDataset();
  PromptEmbeddings e = clm.EncodeSample(ds, 0);
  float diff = 0.0f;
  for (int64_t i = 0; i < e.gt.numel(); ++i) {
    diff += std::fabs(e.gt.at(i) - e.hd.at(i));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(ClmTest, WithoutPrivilegedInfoGtEqualsHd) {
  TimeKdConfig config = SmallConfig();
  config.use_privileged_info = false;
  Clm clm(config);
  WindowDataset ds = SmallDataset();
  PromptEmbeddings e = clm.EncodeSample(ds, 0);
  for (int64_t i = 0; i < e.gt.numel(); ++i) {
    EXPECT_EQ(e.gt.at(i), e.hd.at(i));
  }
}

TEST(ClmTest, WithoutClmUsesValueEncoder) {
  TimeKdConfig config = SmallConfig();
  config.use_clm = false;
  Clm clm(config);
  EXPECT_EQ(clm.language_model(), nullptr);
  WindowDataset ds = SmallDataset();
  PromptEmbeddings e = clm.EncodeSample(ds, 0);
  EXPECT_EQ(e.gt.shape(), (Shape{3, 16}));
}

TEST(ClmTest, DifferentVariablesGetDifferentEmbeddings) {
  TimeKdConfig config = SmallConfig();
  Clm clm(config);
  WindowDataset ds = SmallDataset();
  PromptEmbeddings e = clm.EncodeSample(ds, 0);
  float diff = 0.0f;
  for (int64_t j = 0; j < 16; ++j) {
    diff += std::fabs(e.gt.at(j) - e.gt.at(16 + j));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(EmbeddingCacheTest, PutGetRoundTrip) {
  EmbeddingCache cache;
  EXPECT_FALSE(cache.Contains(3));
  PromptEmbeddings e;
  Rng rng(5);
  e.gt = Tensor::RandNormal({2, 4}, 0, 1, rng);
  e.hd = Tensor::RandNormal({2, 4}, 0, 1, rng);
  cache.Put(3, e);
  ASSERT_TRUE(cache.Contains(3));
  PromptEmbeddings back = cache.Get(3);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(back.gt.at(i), e.gt.at(i));
    EXPECT_EQ(back.hd.at(i), e.hd.at(i));
  }
  EXPECT_EQ(cache.size(), 1);
}

TEST(EmbeddingCacheTest, SaveLoadRoundTrip) {
  EmbeddingCache cache;
  Rng rng(6);
  for (int64_t s = 0; s < 5; ++s) {
    PromptEmbeddings e;
    e.gt = Tensor::RandNormal({3, 4}, 0, 1, rng);
    e.hd = Tensor::RandNormal({3, 4}, 0, 1, rng);
    cache.Put(s, e);
  }
  const std::string path = ::testing::TempDir() + "/emb_cache.bin";
  ASSERT_TRUE(cache.Save(path).ok());
  EmbeddingCache restored;
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.size(), 5);
  PromptEmbeddings a = cache.Get(2);
  PromptEmbeddings b = restored.Get(2);
  for (int64_t i = 0; i < a.gt.numel(); ++i) {
    EXPECT_EQ(a.gt.at(i), b.gt.at(i));
  }
  std::remove(path.c_str());
}

TEST(TeacherTest, OutputShapes) {
  TimeKdConfig config = SmallConfig();
  TimeKdTeacher teacher(config);
  Rng rng(7);
  Tensor l_gt = Tensor::RandNormal({2, 3, 16}, 0, 1, rng);
  Tensor l_hd = Tensor::RandNormal({2, 3, 16}, 0, 1, rng);
  TimeKdTeacher::Output out = teacher.Forward(l_gt, l_hd);
  EXPECT_EQ(out.reconstruction.shape(), (Shape{2, 6, 3}));
  EXPECT_EQ(out.embeddings.shape(), (Shape{2, 3, 16}));
  EXPECT_EQ(out.attention.shape(), (Shape{2, 3, 3}));
}

TEST(TeacherTest, AttentionRowsAreDistributions) {
  TimeKdConfig config = SmallConfig();
  TimeKdTeacher teacher(config);
  Rng rng(8);
  Tensor l = Tensor::RandNormal({1, 3, 16}, 0, 1, rng);
  TimeKdTeacher::Output out = teacher.Forward(l, l);
  for (int64_t i = 0; i < 3; ++i) {
    float row = 0.0f;
    for (int64_t j = 0; j < 3; ++j) row += out.attention.at(i * 3 + j);
    EXPECT_NEAR(row, 1.0f, 1e-4f);
  }
}

TEST(TeacherTest, WithoutScaVariantRuns) {
  TimeKdConfig config = SmallConfig();
  config.use_sca = false;
  TimeKdTeacher teacher(config);
  Rng rng(9);
  Tensor l = Tensor::RandNormal({1, 3, 16}, 0, 1, rng);
  EXPECT_EQ(teacher.Forward(l, l).reconstruction.shape(), (Shape{1, 6, 3}));
}

TEST(StudentTest, OutputShapes) {
  TimeKdConfig config = SmallConfig();
  StudentModel student(config);
  Rng rng(10);
  Tensor x = Tensor::RandNormal({4, 12, 3}, 0, 1, rng);
  StudentModel::Output out = student.Forward(x);
  EXPECT_EQ(out.forecast.shape(), (Shape{4, 6, 3}));
  EXPECT_EQ(out.embeddings.shape(), (Shape{4, 3, 16}));
  EXPECT_EQ(out.attention.shape(), (Shape{4, 3, 3}));
}

TEST(StudentTest, ForecastTracksInputScale) {
  // RevIN: shifting the input by a constant shifts the forecast likewise.
  TimeKdConfig config = SmallConfig();
  StudentModel student(config);
  student.SetTraining(false);
  Rng rng(11);
  Tensor x = Tensor::RandNormal({1, 12, 3}, 0, 1, rng);
  tensor::NoGradGuard no_grad;
  Tensor base = student.Predict(x);
  Tensor shifted_in = tensor::AddScalar(x, 100.0f);
  Tensor shifted_out = student.Predict(shifted_in);
  for (int64_t i = 0; i < base.numel(); ++i) {
    EXPECT_NEAR(shifted_out.at(i) - base.at(i), 100.0f, 0.3f);
  }
}

TEST(DistillationTest, IdenticalTensorsGiveZeroLoss) {
  Rng rng(12);
  Tensor a = Tensor::RandNormal({2, 3, 3}, 0, 1, rng);
  EXPECT_NEAR(CorrelationDistillationLoss(a, a.Clone()).item(), 0.0f, 1e-7f);
  Tensor e = Tensor::RandNormal({2, 3, 8}, 0, 1, rng);
  EXPECT_NEAR(FeatureDistillationLoss(e, e.Clone()).item(), 0.0f, 1e-7f);
}

TEST(DistillationTest, AblationsDisableTerms) {
  Rng rng(13);
  Tensor ta = Tensor::RandNormal({1, 3, 3}, 0, 1, rng);
  Tensor sa = Tensor::RandNormal({1, 3, 3}, 0, 1, rng);
  Tensor te = Tensor::RandNormal({1, 3, 8}, 0, 1, rng);
  Tensor se = Tensor::RandNormal({1, 3, 8}, 0, 1, rng);

  TimeKdConfig config = SmallConfig();
  config.use_correlation_distillation = false;
  PkdLossTerms no_cd = ComputePkdLoss(config, ta, sa, te, se);
  EXPECT_FALSE(no_cd.correlation.defined());
  EXPECT_TRUE(no_cd.feature.defined());

  config.use_correlation_distillation = true;
  config.use_feature_distillation = false;
  PkdLossTerms no_fd = ComputePkdLoss(config, ta, sa, te, se);
  EXPECT_TRUE(no_fd.correlation.defined());
  EXPECT_FALSE(no_fd.feature.defined());
}

TEST(DistillationTest, GradientFlowsToStudentNotTeacher) {
  Rng rng(14);
  Tensor ta = Tensor::RandNormal({1, 2, 2}, 0, 1, rng).set_requires_grad(true);
  Tensor sa = Tensor::RandNormal({1, 2, 2}, 0, 1, rng).set_requires_grad(true);
  Tensor te = Tensor::RandNormal({1, 2, 4}, 0, 1, rng).set_requires_grad(true);
  Tensor se = Tensor::RandNormal({1, 2, 4}, 0, 1, rng).set_requires_grad(true);
  TimeKdConfig config = SmallConfig();
  PkdLossTerms pkd = ComputePkdLoss(config, ta, sa, te, se);
  pkd.total.Backward();
  double g_student = 0.0;
  for (float g : sa.grad()) g_student += std::fabs(g);
  for (float g : se.grad()) g_student += std::fabs(g);
  EXPECT_GT(g_student, 0.0);
  EXPECT_TRUE(ta.grad().empty());
  EXPECT_TRUE(te.grad().empty());
}

TEST(DistillationTest, WeightsScaleTotal) {
  Rng rng(15);
  Tensor ta = Tensor::RandNormal({1, 2, 2}, 0, 1, rng);
  Tensor sa = Tensor::RandNormal({1, 2, 2}, 0, 1, rng);
  Tensor te = Tensor::RandNormal({1, 2, 4}, 0, 1, rng);
  Tensor se = Tensor::RandNormal({1, 2, 4}, 0, 1, rng);
  TimeKdConfig config = SmallConfig();
  config.lambda_cd = 2.0f;
  config.lambda_fd = 0.5f;
  PkdLossTerms pkd = ComputePkdLoss(config, ta, sa, te, se);
  EXPECT_NEAR(pkd.total.item(),
              2.0f * pkd.correlation.item() + 0.5f * pkd.feature.item(),
              1e-5f);
}

TEST(TimeKdTest, WarmCacheCoversAllSamples) {
  TimeKd model(SmallConfig());
  WindowDataset ds = SmallDataset(43, 40);
  model.WarmCache(ds);
  EXPECT_EQ(model.cache().size(), ds.NumSamples());
}

TEST(TimeKdTest, PredictShapeAndDeterminism) {
  TimeKd model(SmallConfig());
  Rng rng(16);
  Tensor x = Tensor::RandNormal({2, 12, 3}, 0, 1, rng);
  Tensor a = model.Predict(x);
  Tensor b = model.Predict(x);
  EXPECT_EQ(a.shape(), (Shape{2, 6, 3}));
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(TimeKdTest, FitReducesLossAndBeatsInit) {
  TimeKd model(SmallConfig());
  WindowDataset train = SmallDataset(44, 120);
  WindowDataset test = SmallDataset(44, 120);
  TimeKd::Metrics before = model.Evaluate(test);
  TrainConfig tc;
  tc.epochs = 3;
  tc.batch_size = 8;
  tc.lr = 3e-3;
  FitStats stats = model.Fit(train, nullptr, tc);
  // Two phases: 3 teacher epochs (Algorithm 1) + 3 student epochs.
  ASSERT_EQ(stats.epochs.size(), 6u);
  EXPECT_LT(stats.epochs[2].recon_loss, stats.epochs[0].recon_loss)
      << "teacher reconstruction did not improve";
  EXPECT_LT(stats.epochs[5].fcst_loss, stats.epochs[3].fcst_loss)
      << "student forecasting did not improve";
  TimeKd::Metrics after = model.Evaluate(test);
  EXPECT_LT(after.mse, before.mse);
}

TEST(TimeKdTest, ValidationTracksBestEpoch) {
  TimeKd model(SmallConfig());
  WindowDataset train = SmallDataset(45, 100);
  WindowDataset val = SmallDataset(46, 60);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  FitStats stats = model.Fit(train, &val, tc);
  EXPECT_GE(stats.best_epoch, 0);
  EXPECT_LT(stats.best_val_mse, 1e9);
  // Teacher epochs carry no validation; student epochs do.
  EXPECT_TRUE(std::isnan(stats.epochs.front().val_mse));
  EXPECT_FALSE(std::isnan(stats.epochs.back().val_mse));
}

TEST(TimeKdTest, TrainableParametersExcludeFrozenClm) {
  TimeKdConfig config = SmallConfig();
  TimeKd model(config);
  const int64_t trainable = model.TrainableParameters();
  EXPECT_GT(trainable, 0);
  // The frozen CLM is larger than zero but not counted.
  EXPECT_GT(model.clm().NumParameters(), 0);
  EXPECT_EQ(trainable,
            model.teacher().NumParameters() + model.student().NumParameters());
}

TEST(TimeKdTest, SaveLoadStudentPreservesPredictions) {
  TimeKdConfig config = SmallConfig();
  TimeKd a(config);
  config.seed = 999;  // different init
  TimeKd b(config);
  Rng rng(17);
  Tensor x = Tensor::RandNormal({1, 12, 3}, 0, 1, rng);
  const std::string path = ::testing::TempDir() + "/student.bin";
  ASSERT_TRUE(a.SaveStudent(path).ok());
  ASSERT_TRUE(b.LoadStudent(path).ok());
  Tensor ya = a.Predict(x);
  Tensor yb = b.Predict(x);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya.at(i), yb.at(i));
  std::remove(path.c_str());
}

TEST(TimeKdTest, AllAblationVariantsTrain) {
  WindowDataset train = SmallDataset(48, 60);
  for (int variant = 0; variant < 6; ++variant) {
    TimeKdConfig config = SmallConfig();
    switch (variant) {
      case 0: config.use_privileged_info = false; break;
      case 1: config.use_calibrated_attention = false; break;
      case 2: config.use_clm = false; break;
      case 3: config.use_sca = false; break;
      case 4: config.use_correlation_distillation = false; break;
      case 5: config.use_feature_distillation = false; break;
    }
    TimeKd model(config);
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 8;
    FitStats stats = model.Fit(train, nullptr, tc);
    EXPECT_GT(stats.steps, 0) << "variant " << variant;
    EXPECT_TRUE(std::isfinite(stats.epochs[0].total_loss))
        << "variant " << variant;
  }
}

}  // namespace
}  // namespace timekd::core
