#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/attention.h"
#include "obs/metrics.h"
#include "tensor/matmul_kernel.h"
#include "tensor/ops.h"
#include "tensor/row_kernels.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace timekd::tensor {
namespace {

using timekd::Rng;

/// Equivalence contract between the dispatched (possibly SIMD) kernels and
/// the always-compiled scalar references (docs/performance.md):
///
///  * The SIMD paths reassociate reductions (8-wide lane sums folded by
///    horizontal adds, double-precision lane pairs) and use a polynomial
///    exp, so results are *numerically equivalent*, not bit-identical, to
///    the scalar kernels. The bound used here is
///        |simd - scalar| <= atol + rtol * |scalar|
///    with rtol = 1e-5 (about 85 float ulps — generous room for a
///    reduction over k <= 300 terms, where worst-case reassociation error
///    grows with the term count) and atol = 1e-5 (absorbs cancellation
///    around zero, where relative error is meaningless).
///  * When SIMD is compiled out (TIMEKD_SIMD=OFF or non-AVX2 target) the
///    dispatched kernel IS the scalar reference and the comparison is
///    exact; the suite still runs so the scalar fallback stays covered by
///    the same shapes and edge cases.
///
/// The suite runs under the default, asan-ubsan and tsan presets
/// (tools/check.sh), so lane loads/stores on the ragged tails are also
/// memory-checked.
constexpr float kRtol = 1e-5f;
constexpr float kAtol = 1e-5f;

void ExpectClose(const std::vector<float>& got, const std::vector<float>& want,
                 const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    const float tol = kAtol + kRtol * std::fabs(want[i]);
    EXPECT_NEAR(got[i], want[i], tol) << what << " element " << i;
  }
}

std::vector<float> RandVec(int64_t n, Rng& rng, float lo = -1.0f,
                           float hi = 1.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.Uniform(lo, hi));
  return v;
}

/// --- Matmul forward + both backward contractions -------------------------

struct MatMulShape {
  int64_t nbatch, m, k, n;
  bool a_batched, b_batched;
};

std::vector<MatMulShape> MatMulShapes() {
  return {
      // Degenerate single-lattice-point and unit dims.
      {1, 1, 1, 1, false, false},
      {1, 1, 7, 1, false, false},
      {1, 5, 1, 9, false, false},
      // Exact register-tile multiples (kMr=4, kNr=16).
      {1, 4, 16, 16, false, false},
      {1, 8, 32, 64, false, false},
      // Ragged everything: row tail (m % 4), column tail (n % 16 and n % 8),
      // and a k just over the kKc=256 panel boundary.
      {1, 5, 17, 33, false, false},
      {1, 7, 257, 31, false, false},
      {1, 3, 300, 23, false, false},
      // Power-of-two B row stride (the L1-aliasing case packing exists for).
      {1, 6, 64, 128, false, false},
      // Batched combinations, including one-sided broadcast.
      {2, 3, 9, 5, true, true},
      {3, 4, 16, 16, true, false},
      {2, 5, 33, 17, false, true},
      {2, 1, 40, 1, true, true},
  };
}

TEST(MatMulKernelEquivalence, ForwardMatchesScalarReference) {
  Rng rng(101);
  for (const auto& s : MatMulShapes()) {
    const int64_t rows = s.nbatch * s.m;
    std::vector<float> a =
        RandVec((s.a_batched ? s.nbatch : 1) * s.m * s.k, rng);
    std::vector<float> b =
        RandVec((s.b_batched ? s.nbatch : 1) * s.k * s.n, rng);
    // Sprinkle exact zeros into A: the scalar kernel skips them, the SIMD
    // kernel multiplies through — for finite inputs both give the same sum.
    for (size_t i = 0; i < a.size(); i += 5) a[i] = 0.0f;
    std::vector<float> c_simd(static_cast<size_t>(rows * s.n), 0.0f);
    std::vector<float> c_ref = c_simd;
    kernel::MatMulRows(a.data(), b.data(), c_simd.data(), 0, rows, s.m, s.k,
                       s.n, s.a_batched, s.b_batched);
    kernel::MatMulRowsScalar(a.data(), b.data(), c_ref.data(), 0, rows, s.m,
                             s.k, s.n, s.a_batched, s.b_batched);
    ExpectClose(c_simd, c_ref,
                "forward " + std::to_string(s.m) + "x" + std::to_string(s.k) +
                    "x" + std::to_string(s.n));
  }
}

TEST(MatMulKernelEquivalence, BackwardATransposeMatchesScalarReference) {
  Rng rng(102);
  for (const auto& s : MatMulShapes()) {
    const int64_t da_rows = (s.a_batched ? s.nbatch : 1) * s.m;
    std::vector<float> dy = RandVec(s.nbatch * s.m * s.n, rng);
    std::vector<float> b =
        RandVec((s.b_batched ? s.nbatch : 1) * s.k * s.n, rng);
    // Accumulating (+=) contract: start from a nonzero dA.
    std::vector<float> da_simd = RandVec(da_rows * s.k, rng);
    std::vector<float> da_ref = da_simd;
    kernel::MatMulBTRows(dy.data(), b.data(), da_simd.data(), 0, da_rows, s.m,
                         s.k, s.n, s.nbatch, s.a_batched, s.b_batched);
    kernel::MatMulBTRowsScalar(dy.data(), b.data(), da_ref.data(), 0, da_rows,
                               s.m, s.k, s.n, s.nbatch, s.a_batched,
                               s.b_batched);
    ExpectClose(da_simd, da_ref, "dA");
  }
}

TEST(MatMulKernelEquivalence, BackwardBTransposeMatchesScalarReference) {
  Rng rng(103);
  for (const auto& s : MatMulShapes()) {
    const int64_t db_rows = (s.b_batched ? s.nbatch : 1) * s.k;
    std::vector<float> a =
        RandVec((s.a_batched ? s.nbatch : 1) * s.m * s.k, rng);
    for (size_t i = 0; i < a.size(); i += 7) a[i] = 0.0f;
    std::vector<float> dy = RandVec(s.nbatch * s.m * s.n, rng);
    std::vector<float> db_simd = RandVec(db_rows * s.n, rng);
    std::vector<float> db_ref = db_simd;
    kernel::MatMulATRows(a.data(), dy.data(), db_simd.data(), 0, db_rows, s.m,
                         s.k, s.n, s.nbatch, s.a_batched, s.b_batched);
    kernel::MatMulATRowsScalar(a.data(), dy.data(), db_ref.data(), 0, db_rows,
                               s.m, s.k, s.n, s.nbatch, s.a_batched,
                               s.b_batched);
    ExpectClose(db_simd, db_ref, "dB");
  }
}

TEST(MatMulKernelEquivalence, PartialAndEmptyRowRanges) {
  Rng rng(104);
  const int64_t m = 9, k = 37, n = 21;
  std::vector<float> a = RandVec(m * k, rng);
  std::vector<float> b = RandVec(k * n, rng);
  // Interior shard [2, 7): rows outside the shard must be untouched.
  std::vector<float> c = RandVec(m * n, rng);
  std::vector<float> c_before = c;
  std::vector<float> c_ref = c;
  kernel::MatMulRows(a.data(), b.data(), c.data(), 2, 7, m, k, n, false,
                     false);
  kernel::MatMulRowsScalar(a.data(), b.data(), c_ref.data(), 2, 7, m, k, n,
                           false, false);
  ExpectClose(c, c_ref, "interior shard");
  for (int64_t r = 0; r < m; ++r) {
    if (r >= 2 && r < 7) continue;
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(c[r * n + j], c_before[r * n + j])
          << "row " << r << " outside shard was written";
    }
  }
  // Empty range: a no-op on every path.
  std::vector<float> c_empty = c_before;
  kernel::MatMulRows(a.data(), b.data(), c_empty.data(), 4, 4, m, k, n, false,
                     false);
  EXPECT_EQ(c_empty, c_before);
  kernel::MatMulBTRows(a.data(), b.data(), c_empty.data(), 4, 4, m, k, n, 1,
                       false, false);
  kernel::MatMulATRows(a.data(), b.data(), c_empty.data(), 4, 4, m, k, n, 1,
                       false, false);
  EXPECT_EQ(c_empty, c_before);
}

/// --- Row kernels: dot/axpy/softmax/layernorm ------------------------------

// Lengths straddling every lane boundary the AVX2 paths care about:
// sub-lane, exactly one lane, lane+1, two lanes, ragged, and long.
const int64_t kRowLengths[] = {1, 3, 7, 8, 9, 15, 16, 17, 64, 255, 257};

TEST(RowKernelEquivalence, DotAndAxpy) {
  Rng rng(201);
  for (int64_t n : kRowLengths) {
    std::vector<float> x = RandVec(n, rng), y = RandVec(n, rng);
    const float want = kernel::DotScalar(x.data(), y.data(), n);
    const float got = kernel::Dot(x.data(), y.data(), n);
    EXPECT_NEAR(got, want, kAtol + kRtol * std::fabs(want)) << "dot n=" << n;

    std::vector<float> d_simd = RandVec(n, rng);
    std::vector<float> d_ref = d_simd;
    kernel::Axpy(d_simd.data(), 0.37f, x.data(), n);
    kernel::AxpyScalar(d_ref.data(), 0.37f, x.data(), n);
    ExpectClose(d_simd, d_ref, "axpy n=" + std::to_string(n));
  }
}

TEST(RowKernelEquivalence, SoftmaxForwardAndBackward) {
  Rng rng(202);
  for (int64_t n : kRowLengths) {
    // Mix moderate logits with -1e9 "masked" entries — the shape attention
    // actually feeds this kernel — plus an all-masked-but-one row.
    std::vector<std::vector<float>> rows;
    rows.push_back(RandVec(n, rng, -4.0f, 4.0f));
    auto masked = RandVec(n, rng, -2.0f, 2.0f);
    for (int64_t j = 0; j < n; j += 2) masked[j] = -1e9f;
    rows.push_back(masked);
    std::vector<float> onehot(n, -1e9f);
    onehot[n / 2] = 0.5f;
    rows.push_back(onehot);
    rows.emplace_back(n, 1.25f);  // all-equal: exactly uniform output
    for (const auto& x : rows) {
      std::vector<float> y_simd(n), y_ref(n);
      kernel::SoftmaxRow(x.data(), y_simd.data(), n);
      kernel::SoftmaxRowScalar(x.data(), y_ref.data(), n);
      ExpectClose(y_simd, y_ref, "softmax n=" + std::to_string(n));

      std::vector<float> dy = RandVec(n, rng);
      std::vector<float> dx_simd(n), dx_ref(n);
      kernel::SoftmaxBwdRow(y_ref.data(), dy.data(), dx_simd.data(), n);
      kernel::SoftmaxBwdRowScalar(y_ref.data(), dy.data(), dx_ref.data(), n);
      ExpectClose(dx_simd, dx_ref, "softmax_bwd n=" + std::to_string(n));
    }
  }
}

TEST(RowKernelEquivalence, LayerNormForwardAndBackward) {
  Rng rng(203);
  for (int64_t n : kRowLengths) {
    std::vector<float> x = RandVec(n, rng, -3.0f, 3.0f);
    std::vector<float> gamma = RandVec(n, rng, 0.5f, 1.5f);
    std::vector<float> beta = RandVec(n, rng);
    const float eps = 1e-5f;

    std::vector<float> y_simd(n), y_ref(n);
    float mu_simd = 0, is_simd = 0, mu_ref = 0, is_ref = 0;
    kernel::LayerNormRow(x.data(), gamma.data(), beta.data(), y_simd.data(), n,
                         eps, &mu_simd, &is_simd);
    kernel::LayerNormRowScalar(x.data(), gamma.data(), beta.data(),
                               y_ref.data(), n, eps, &mu_ref, &is_ref);
    ExpectClose(y_simd, y_ref, "layernorm n=" + std::to_string(n));
    EXPECT_NEAR(mu_simd, mu_ref, kAtol + kRtol * std::fabs(mu_ref));
    EXPECT_NEAR(is_simd, is_ref, kAtol + kRtol * std::fabs(is_ref));

    std::vector<float> dy = RandVec(n, rng);
    std::vector<float> dx_simd(n), dx_ref(n);
    // dgamma/dbeta are accumulating shard partials: seed both identically.
    std::vector<float> dg_simd = RandVec(n, rng);
    std::vector<float> dg_ref = dg_simd;
    std::vector<float> db_simd = RandVec(n, rng);
    std::vector<float> db_ref = db_simd;
    kernel::LayerNormBwdRow(x.data(), dy.data(), gamma.data(), mu_ref, is_ref,
                            n, dx_simd.data(), dg_simd.data(),
                            db_simd.data());
    kernel::LayerNormBwdRowScalar(x.data(), dy.data(), gamma.data(), mu_ref,
                                  is_ref, n, dx_ref.data(), dg_ref.data(),
                                  db_ref.data());
    ExpectClose(dx_simd, dx_ref, "layernorm_bwd dx n=" + std::to_string(n));
    ExpectClose(dg_simd, dg_ref, "layernorm_bwd dgamma");
    ExpectClose(db_simd, db_ref, "layernorm_bwd dbeta");
  }
}

/// --- Fused eval attention vs the composed-op path ------------------------

void CompareFusedVsComposed(nn::MultiHeadAttention& attn, const Tensor& q,
                            const Tensor& k, const Tensor& v,
                            const Tensor& mask, const std::string& what) {
  NoGradGuard no_grad;
  obs::Counter* fused_calls =
      obs::GlobalMetrics().GetCounter("nn/fused_attention_calls");
  const uint64_t calls_before = fused_calls->value();
  nn::MultiHeadAttention::set_fused_eval_enabled(true);
  Tensor y_fused = attn.Forward(q, k, v, mask);
  Tensor a_fused = attn.last_attention();
  // The fused kernel must actually have run, or this test compares the
  // composed path against itself.
  EXPECT_GT(fused_calls->value(), calls_before) << what;
  nn::MultiHeadAttention::set_fused_eval_enabled(false);
  Tensor y_comp = attn.Forward(q, k, v, mask);
  Tensor a_comp = attn.last_attention();
  nn::MultiHeadAttention::set_fused_eval_enabled(true);

  ASSERT_EQ(y_fused.shape(), y_comp.shape()) << what;
  ASSERT_EQ(a_fused.shape(), a_comp.shape()) << what;
  // Same rtol/atol contract as the raw kernels: the fused path reorders
  // the score/softmax/contraction arithmetic but computes the same values.
  for (int64_t i = 0; i < y_comp.numel(); ++i) {
    EXPECT_NEAR(y_fused.at(i), y_comp.at(i),
                kAtol + kRtol * std::fabs(y_comp.at(i)))
        << what << " output " << i;
  }
  for (int64_t i = 0; i < a_comp.numel(); ++i) {
    EXPECT_NEAR(a_fused.at(i), a_comp.at(i),
                kAtol + kRtol * std::fabs(a_comp.at(i)))
        << what << " attention " << i;
  }
}

TEST(FusedAttentionEquivalence, SelfAttentionUnmasked) {
  Rng rng(301);
  nn::MultiHeadAttention attn(16, 4, /*dropout=*/0.0f, &rng);
  attn.SetTraining(false);
  Tensor x = Tensor::RandNormal({2, 5, 16}, 0, 1, rng);
  CompareFusedVsComposed(attn, x, x, x, Tensor(), "self/unmasked");
}

TEST(FusedAttentionEquivalence, CausalMask) {
  Rng rng(302);
  nn::MultiHeadAttention attn(8, 2, 0.0f, &rng);
  attn.SetTraining(false);
  const int64_t s = 6;
  std::vector<float> m(s * s, 0.0f);
  for (int64_t i = 0; i < s; ++i) {
    for (int64_t j = i + 1; j < s; ++j) m[i * s + j] = -1e9f;
  }
  Tensor mask = Tensor::FromVector({s, s}, std::move(m));
  Tensor x = Tensor::RandNormal({2, s, 8}, 0, 1, rng);
  CompareFusedVsComposed(attn, x, x, x, mask, "self/causal");
}

TEST(FusedAttentionEquivalence, CrossAttentionWithRope) {
  Rng rng(303);
  nn::MultiHeadAttention attn(16, 4, 0.0f, &rng, /*use_rope=*/true);
  attn.SetTraining(false);
  Tensor q = Tensor::RandNormal({1, 3, 16}, 0, 1, rng);
  Tensor kv = Tensor::RandNormal({1, 7, 16}, 0, 1, rng);
  CompareFusedVsComposed(attn, q, kv, kv, Tensor(), "cross/rope");
}

TEST(FusedAttentionEquivalence, SingleQueryAndKeyEdge) {
  Rng rng(304);
  nn::MultiHeadAttention attn(8, 2, 0.0f, &rng);
  attn.SetTraining(false);
  // Sq = Sk = 1: the softmax row is a single certain key.
  Tensor q = Tensor::RandNormal({1, 1, 8}, 0, 1, rng);
  CompareFusedVsComposed(attn, q, q, q, Tensor(), "1x1");
}

TEST(FusedAttentionEquivalence, ComposedPathRunsWhenGradOn) {
  Rng rng(305);
  nn::MultiHeadAttention attn(8, 2, 0.0f, &rng);
  attn.SetTraining(false);
  obs::Counter* fused_calls =
      obs::GlobalMetrics().GetCounter("nn/fused_attention_calls");
  const uint64_t before = fused_calls->value();
  Tensor x = Tensor::RandNormal({1, 4, 8}, 0, 1, rng);
  // Grad mode on (the default): the fused kernel must stand down so the
  // composed path can build the tape.
  Tensor y = attn.SelfForward(x, Tensor());
  EXPECT_EQ(fused_calls->value(), before);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 8}));
}

}  // namespace
}  // namespace timekd::tensor
