#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "obs/health.h"
#include "obs/json.h"
#include "obs/observer.h"
#include "obs/report.h"

namespace timekd::obs {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

RunHistory SampleHistory() {
  RunHistory history;
  history.title = "unit <run>";
  for (int64_t i = 0; i < 10; ++i) {
    RunHistory::StepPoint p;
    p.step = i + 1;
    p.phase = i < 5 ? "teacher" : "student";
    p.total_loss = 1.0 / static_cast<double>(i + 1);
    p.grad_norm = 0.5;
    p.lr = 1e-3;
    history.steps.push_back(p);
  }
  for (int64_t e = 0; e < 3; ++e) {
    EpochRecord r;
    r.phase = "student";
    r.epoch = e;
    r.steps = 5;
    r.total_loss = 1.0 - 0.1 * static_cast<double>(e);
    r.val_mse = 0.9 - 0.1 * static_cast<double>(e);
    r.distill_cka = 0.5 + 0.1 * static_cast<double>(e);
    r.distill_attn_div = 0.3 - 0.05 * static_cast<double>(e);
    history.epochs.push_back(r);
  }
  HealthEvent event;
  event.type = HealthEventType::kLossSpike;
  event.phase = "student";
  event.step = 7;
  event.message = "loss 9 > threshold 2 & <spiky>";
  history.events.push_back(event);
  history.verdict = HealthVerdict::kWarning;
  history.anomalies = 1;
  return history;
}

TEST(RenderHtmlReportTest, ContainsChartsTablesAndVerdict) {
  const std::string html = RenderHtmlReport(SampleHistory());
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  for (const char* chart : {"loss", "grad_norm", "lr", "epoch", "distill_cka",
                            "distill_attn_div", "events"}) {
    EXPECT_NE(html.find("data-chart=\"" + std::string(chart) + "\""),
              std::string::npos)
        << "missing chart " << chart;
  }
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("warning"), std::string::npos);
  // User-controlled strings are escaped, never spliced raw into markup.
  EXPECT_EQ(html.find("unit <run>"), std::string::npos);
  EXPECT_NE(html.find("unit &lt;run&gt;"), std::string::npos);
  EXPECT_EQ(html.find("<spiky>"), std::string::npos);
  // Self-contained: no external scripts, stylesheets or images.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
}

TEST(RenderHtmlReportTest, EmptyHistoryStillRendersAPage) {
  const std::string html = RenderHtmlReport(RunHistory{});
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("healthy"), std::string::npos);
}

TEST(WriteHtmlReportTest, WritesRenderedPageToDisk) {
  const std::string path = ::testing::TempDir() + "/report.html";
  std::remove(path.c_str());
  ASSERT_TRUE(WriteHtmlReport(SampleHistory(), path).ok());
  std::ifstream in(path);
  std::string page((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(page, RenderHtmlReport(SampleHistory()));
  std::remove(path.c_str());
}

TEST(WriteHtmlReportTest, UnwritablePathFails) {
  EXPECT_FALSE(WriteHtmlReport(RunHistory{}, "/nonexistent/dir/x.html").ok());
}

// --- JSONL loading ---------------------------------------------------------

std::string WriteTrainingLog(const std::string& name, int64_t steps,
                             int64_t epochs) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  JsonlObserver observer(path);
  for (int64_t i = 0; i < steps; ++i) {
    StepRecord r;
    r.phase = "student";
    r.epoch = i / 4;
    r.step = i + 1;
    r.total_loss = 2.0 / static_cast<double>(i + 1);
    r.grad_norm = 0.25;
    r.lr = 5e-4;
    observer.OnStep(r);
  }
  for (int64_t e = 0; e < epochs; ++e) {
    EpochRecord r;
    r.phase = "student";
    r.epoch = e;
    r.steps = 4;
    r.total_loss = 1.0;
    r.val_mse = kNaN;  // no validation set: must round-trip as NaN
    r.distill_cka = 0.7;
    observer.OnEpoch(r);
  }
  return path;
}

TEST(MergeRunHistoryTest, RoundTripsTrainingLog) {
  const std::string path = WriteTrainingLog("train_log.jsonl", 8, 2);
  StatusOr<RunHistory> loaded = LoadRunHistoryFromJsonl(path);
  ASSERT_TRUE(loaded.ok());
  const RunHistory& history = loaded.value();
  ASSERT_EQ(history.steps.size(), 8u);
  EXPECT_EQ(history.steps[0].step, 1);
  EXPECT_EQ(history.steps[0].phase, "student");
  EXPECT_NEAR(history.steps[0].total_loss, 2.0, 1e-12);
  EXPECT_NEAR(history.steps[0].lr, 5e-4, 1e-12);
  ASSERT_EQ(history.epochs.size(), 2u);
  EXPECT_TRUE(std::isnan(history.epochs[0].val_mse));
  EXPECT_NEAR(history.epochs[0].distill_cka, 0.7, 1e-12);
  EXPECT_EQ(history.verdict, HealthVerdict::kHealthy);
  std::remove(path.c_str());
}

TEST(MergeRunHistoryTest, MergesHealthStreamOntoTrainingLog) {
  const std::string train_path = WriteTrainingLog("merge_train.jsonl", 4, 1);
  const std::string health_path = ::testing::TempDir() + "/merge_health.jsonl";
  std::remove(health_path.c_str());
  HealthConfig config;
  config.events_path = health_path;
  config.html_report_path = "";
  {
    HealthMonitor monitor(config);
    StepRecord r;
    r.phase = "student";
    r.step = 3;
    r.total_loss = kNaN;
    monitor.OnStep(r);
  }
  RunHistory history;
  ASSERT_TRUE(MergeRunHistoryFromJsonl(train_path, &history).ok());
  ASSERT_TRUE(MergeRunHistoryFromJsonl(health_path, &history).ok());
  EXPECT_EQ(history.steps.size(), 4u);
  ASSERT_EQ(history.events.size(), 1u);
  EXPECT_EQ(history.events[0].type, HealthEventType::kNonFinite);
  EXPECT_EQ(history.verdict, HealthVerdict::kFailed);
  // The merged history renders with its events on the timeline.
  const std::string html = RenderHtmlReport(history);
  EXPECT_NE(html.find("data-chart=\"events\""), std::string::npos);
  std::remove(train_path.c_str());
  std::remove(health_path.c_str());
}

TEST(MergeRunHistoryTest, SkipsGarbageLinesButFailsOnMissingFile) {
  const std::string path = ::testing::TempDir() + "/garbage.jsonl";
  {
    std::ofstream out(path);
    out << "not json at all\n";
    out << "{\"kind\":\"step\",\"phase\":\"p\",\"step\":1,\"total_loss\":1}\n";
    out << "{\"kind\":\"step\",\"truncated\":\n";  // torn copy of a line
    out << "{\"kind\":\"something_else\",\"x\":1}\n";
  }
  RunHistory history;
  ASSERT_TRUE(MergeRunHistoryFromJsonl(path, &history).ok());
  EXPECT_EQ(history.steps.size(), 1u);
  EXPECT_FALSE(
      MergeRunHistoryFromJsonl(::testing::TempDir() + "/no_such.jsonl",
                               &history)
          .ok());
  std::remove(path.c_str());
}

TEST(MergeRunHistoryTest, NonFiniteStepFieldsRoundTrip) {
  const std::string path = ::testing::TempDir() + "/nonfinite.jsonl";
  std::remove(path.c_str());
  {
    JsonlObserver observer(path);
    StepRecord r;
    r.phase = "teacher";
    r.step = 1;
    r.total_loss = kNaN;
    r.grad_norm = std::numeric_limits<double>::infinity();
    observer.OnStep(r);
  }
  StatusOr<RunHistory> loaded = LoadRunHistoryFromJsonl(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().steps.size(), 1u);
  // Step records encode every non-finite double as null (JsonNumber), which
  // reads back as NaN — the sign of an Inf is only preserved by the
  // JsonNumberOrString escape hatch health events use for their `value`.
  EXPECT_TRUE(std::isnan(loaded.value().steps[0].total_loss));
  EXPECT_FALSE(std::isfinite(loaded.value().steps[0].grad_norm));
  std::remove(path.c_str());
}

// A run killed mid-write leaves a log the report loader fully recovers:
// JsonlWriter emits each record as one flushed fwrite, so an abrupt death
// (here: _Exit, which skips every destructor) never tears a line.
TEST(JsonlCrashDeathTest, KilledRunLeavesFullyParseableLog) {
  const std::string path = ::testing::TempDir() + "/crash.jsonl";
  std::remove(path.c_str());
  EXPECT_EXIT(
      {
        JsonlObserver observer(path);
        for (int64_t i = 0; i < 50; ++i) {
          StepRecord r;
          r.phase = "student";
          r.step = i + 1;
          r.total_loss = 1.0;
          observer.OnStep(r);
        }
        std::_Exit(7);
      },
      ::testing::ExitedWithCode(7), "");
  StatusOr<RunHistory> loaded = LoadRunHistoryFromJsonl(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().steps.size(), 50u);
  // ...and the recovered log renders to a complete report.
  const std::string html = RenderHtmlReport(loaded.value());
  EXPECT_NE(html.find("data-chart=\"loss\""), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace timekd::obs
