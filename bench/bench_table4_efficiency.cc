// Reproduces Table IV: resource efficiency on ETTm1 with forecasting
// horizon 96 — trainable parameters, training time per epoch, memory and
// inference speed (test batch size 1, train batch size 8 as in the paper).

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "eval/table.h"

int main() {
  using namespace timekd;
  using namespace timekd::eval;

  const BenchProfile profile = GetBenchProfile();
  bench::PrintBanner(
      "Table IV (efficiency on ETTm1, FH=96)",
      "trainable params (M) / train s per epoch / memory MiB / infer s per "
      "iteration on A100; here: measured on one CPU core",
      profile);

  const int64_t horizon = ScaledHorizon(profile, 96);
  TablePrinter table({"Model", "Trainable params (K)", "Frozen params (K)",
                      "Train s/epoch", "One-time cache (s)", "Peak mem (MB)",
                      "Infer s/sample", "Test MSE"});
  // Paper row order (Table IV): iTransformer, Time-LLM, UniTime, OFA,
  // TimeCMA, TimeKD.
  const ModelKind kOrder[] = {ModelKind::kITransformer, ModelKind::kTimeLlm,
                              ModelKind::kUniTime,      ModelKind::kOfa,
                              ModelKind::kTimeCma,      ModelKind::kTimeKd};
  for (ModelKind model : kOrder) {
    RunSpec spec;
    spec.model = model;
    spec.dataset = data::DatasetId::kEttm1;
    spec.horizon = horizon;
    spec.profile = profile;
    RunResult r = RunExperiment(spec);
    table.AddRow({ModelName(model),
                  TablePrinter::Num(r.trainable_params / 1000.0, 1),
                  TablePrinter::Num(r.frozen_params / 1000.0, 1),
                  TablePrinter::Num(r.train_seconds_per_epoch, 3),
                  TablePrinter::Num(r.cache_seconds, 2),
                  TablePrinter::Num(r.peak_memory_bytes / 1e6, 1),
                  TablePrinter::Num(r.infer_seconds_per_sample, 5),
                  TablePrinter::Num(r.mse)});
  }
  table.Print();
  std::printf(
      "\nPaper shape to compare: TimeKD has the lowest memory and the "
      "fastest inference of all models, and the lowest trainable-parameter "
      "count and training time among the LLM-based methods (second only to "
      "iTransformer overall). TimeKD's prompt encoding is a one-time cache "
      "cost paid before training, not an inference cost.\n");
  timekd::bench::FinishBench("table4_efficiency", profile);
  return 0;
}
