// Reproduces Table VI: zero-shot transfer on ETT — train on one dataset,
// test on another without any adaptation. Input 96, FH 96.

#include <cstdio>
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "eval/table.h"

int main() {
  using namespace timekd;
  using namespace timekd::eval;

  BenchProfile profile = GetBenchProfile();
  // Few configurations here: average at least 2 seeds to tame run noise.
  profile.seeds = std::max<int64_t>(profile.seeds, 2);
  bench::PrintBanner("Table VI (zero-shot transfer on ETT)",
                     "train dataset -> test dataset, input 96, FH 96",
                     profile);

  const int64_t horizon = ScaledHorizon(profile, 96);
  struct Transfer {
    data::DatasetId train;
    data::DatasetId test;
  };
  const Transfer kTransfers[] = {
      {data::DatasetId::kEttm1, data::DatasetId::kEttm2},
      {data::DatasetId::kEttm2, data::DatasetId::kEttm1},
      {data::DatasetId::kEtth1, data::DatasetId::kEtth2},
      {data::DatasetId::kEtth2, data::DatasetId::kEtth1},
  };

  std::vector<std::string> headers = {"Transfer"};
  for (ModelKind m : AllModels()) {
    headers.push_back(std::string(ModelName(m)) + " MSE");
    headers.push_back(std::string(ModelName(m)) + " MAE");
  }
  TablePrinter table(headers);

  int timekd_best = 0;
  for (const Transfer& transfer : kTransfers) {
    std::vector<std::string> cells = {
        std::string(data::DatasetName(transfer.train)) + "->" +
        data::DatasetName(transfer.test)};
    double timekd_mse = 0.0;
    double best_mse = 1e30;
    for (ModelKind model : AllModels()) {
      RunSpec spec;
      spec.model = model;
      spec.dataset = transfer.train;
      spec.test_dataset = transfer.test;
      spec.horizon = horizon;
      spec.profile = profile;
      RunResult r = RunAveraged(spec);
      cells.push_back(TablePrinter::Num(r.mse));
      cells.push_back(TablePrinter::Num(r.mae));
      if (model == ModelKind::kTimeKd) timekd_mse = r.mse;
      best_mse = std::min(best_mse, r.mse);
    }
    if (timekd_mse <= best_mse + 1e-12) ++timekd_best;
    table.AddRow(cells);
  }
  table.Print();
  std::printf(
      "\nSummary: TimeKD best MSE on %d/4 transfers (paper: all 4, up to "
      "9.2%% better than TimeCMA).\n",
      timekd_best);
  timekd::bench::FinishBench("table6_zeroshot", profile);
  return 0;
}
