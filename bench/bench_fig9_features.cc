// Reproduces Figure 9: self-relation feature matrices (E x E^T) of the
// privileged Transformer and the time-series Transformer on ETTm1 (FH 96).
// Paper observation: the privileged features show comprehensive, balanced
// variable interactions; the student's are more localized.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/timekd.h"
#include "eval/heatmap.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "tensor/ops.h"

int main() {
  using namespace timekd;
  using namespace timekd::eval;

  const BenchProfile profile = GetBenchProfile();
  bench::PrintBanner("Figure 9 (self-relation feature matrices, ETTm1, FH=96)",
                     "E_GT E_GT^T (teacher) vs T_H T_H^T (student)", profile);

  const int64_t horizon = ScaledHorizon(profile, 96);
  PreparedData data = PrepareData(data::DatasetId::kEttm1, horizon, profile,
                                  /*train_fraction=*/1.0);
  core::TimeKdConfig config = MakeTimeKdConfig(
      profile, data.num_variables, horizon, data.freq_minutes, /*seed=*/1);
  core::TimeKd model(config);
  core::TrainConfig tc;
  tc.epochs = profile.epochs;
  tc.teacher_epochs = profile.epochs * 2;
  tc.batch_size = profile.batch_size;
  tc.lr = profile.lr;
  model.Fit(data.train, &data.val, tc);

  const int64_t n = data.num_variables;
  tensor::Tensor teacher_rel = tensor::Tensor::Zeros({n, n});
  tensor::Tensor student_rel = tensor::Tensor::Zeros({n, n});
  const int64_t samples = std::min<int64_t>(16, data.test.NumSamples());
  {
    tensor::NoGradGuard no_grad;
    model.teacher().SetTraining(false);
    model.student().SetTraining(false);
    for (int64_t i = 0; i < samples; ++i) {
      core::PromptEmbeddings embeddings = model.clm().EncodeSample(data.test, i);
      core::TimeKdTeacher::Output teacher_out = model.teacher().Forward(
          tensor::Reshape(embeddings.gt, {1, n, embeddings.gt.size(1)}),
          tensor::Reshape(embeddings.hd, {1, n, embeddings.hd.size(1)}));
      data::ForecastBatch batch = data.test.GetBatch({i});
      core::StudentModel::Output student_out =
          model.student().Forward(batch.x);
      // Self-relation: [1, N, D] x [1, D, N] -> [1, N, N].
      tensor::Tensor tr = tensor::MatMul(
          teacher_out.embeddings,
          tensor::Transpose(teacher_out.embeddings, 1, 2));
      tensor::Tensor sr = tensor::MatMul(
          student_out.embeddings,
          tensor::Transpose(student_out.embeddings, 1, 2));
      for (int64_t j = 0; j < n * n; ++j) {
        teacher_rel.data()[j] += tr.at(j) / samples;
        student_rel.data()[j] += sr.at(j) / samples;
      }
    }
  }

  std::printf("\n%s\n",
              RenderHeatMap(teacher_rel,
                            "(a) Privileged feature self-relations E E^T")
                  .c_str());
  std::printf("%s\n",
              RenderHeatMap(student_rel,
                            "(b) Time-series feature self-relations T T^T")
                  .c_str());

  // Off-diagonal mass ratio: the privileged features should spread
  // interactions across variable pairs more than the student's.
  auto offdiag_ratio = [n](const tensor::Tensor& m) {
    double off = 0.0;
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        const double v = std::fabs(m.at(i * n + j));
        total += v;
        if (i != j) off += v;
      }
    }
    return off / std::max(total, 1e-12);
  };
  std::printf("Off-diagonal interaction mass: privileged=%.3f, "
              "student=%.3f (paper: privileged more balanced/global).\n",
              offdiag_ratio(teacher_rel), offdiag_ratio(student_rel));
  timekd::bench::FinishBench("fig9_features", profile);
  return 0;
}
