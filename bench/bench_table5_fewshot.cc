// Reproduces Table V: few-shot forecasting with only the FIRST 10% of the
// training data, input 96 / FH 96, on the four ETT datasets.

#include <cstdio>
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "eval/table.h"

int main() {
  using namespace timekd;
  using namespace timekd::eval;

  BenchProfile profile = GetBenchProfile();
  // 10% of the profile's short series would leave only a couple of
  // training windows — a degenerate regime the paper never enters (10%
  // of ETT is still thousands of steps). Extend the series so that the
  // few-shot split keeps a meaningful number of windows.
  profile.dataset_length *= 4;
  bench::PrintBanner("Table V (few-shot forecasting, 10% training data)",
                     "input 96, FH 96, ETTm1/ETTm2/ETTh1/ETTh2", profile);

  const int64_t horizon = ScaledHorizon(profile, 96);
  std::vector<std::string> headers = {"Dataset"};
  for (ModelKind m : AllModels()) {
    headers.push_back(std::string(ModelName(m)) + " MSE");
    headers.push_back(std::string(ModelName(m)) + " MAE");
  }
  TablePrinter table(headers);

  int timekd_best = 0;
  int rows = 0;
  for (data::DatasetId dataset :
       {data::DatasetId::kEttm1, data::DatasetId::kEttm2,
        data::DatasetId::kEtth1, data::DatasetId::kEtth2}) {
    std::vector<std::string> cells = {data::DatasetName(dataset)};
    double timekd_mse = 0.0;
    double best_mse = 1e30;
    for (ModelKind model : AllModels()) {
      RunSpec spec;
      spec.model = model;
      spec.dataset = dataset;
      spec.horizon = horizon;
      spec.profile = profile;
      spec.train_fraction = 0.10;
      RunResult r = RunAveraged(spec);
      cells.push_back(TablePrinter::Num(r.mse));
      cells.push_back(TablePrinter::Num(r.mae));
      if (model == ModelKind::kTimeKd) timekd_mse = r.mse;
      best_mse = std::min(best_mse, r.mse);
    }
    if (timekd_mse <= best_mse + 1e-12) ++timekd_best;
    ++rows;
    table.AddRow(cells);
  }
  table.Print();
  std::printf(
      "\nSummary: TimeKD best MSE on %d/%d datasets under 10%% data "
      "(paper: all 4; distillation is claimed to matter most under "
      "scarcity).\n",
      timekd_best, rows);
  timekd::bench::FinishBench("table5_fewshot", profile);
  return 0;
}
