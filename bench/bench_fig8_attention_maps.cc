// Reproduces Figure 8: attention maps of the privileged Transformer
// (teacher) and the time-series Transformer (student) on ETTm1 (FH 96).
// The paper's observation: the privileged attention is global/universal,
// the student's is local/variable-specific, and correlation distillation
// bridges the two.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/timekd.h"
#include "eval/heatmap.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "tensor/ops.h"

int main() {
  using namespace timekd;
  using namespace timekd::eval;

  const BenchProfile profile = GetBenchProfile();
  bench::PrintBanner("Figure 8 (attention maps, ETTm1, FH=96)",
                     "privileged Transformer vs time-series Transformer "
                     "pairwise variable attention",
                     profile);

  const int64_t horizon = ScaledHorizon(profile, 96);
  PreparedData data = PrepareData(data::DatasetId::kEttm1, horizon, profile,
                                  /*train_fraction=*/1.0);
  core::TimeKdConfig config = MakeTimeKdConfig(
      profile, data.num_variables, horizon, data.freq_minutes, /*seed=*/1);
  core::TimeKd model(config);
  core::TrainConfig tc;
  tc.epochs = profile.epochs;
  tc.teacher_epochs = profile.epochs * 2;
  tc.batch_size = profile.batch_size;
  tc.lr = profile.lr;
  model.Fit(data.train, &data.val, tc);

  // Average attention maps over a handful of test samples.
  const int64_t n = data.num_variables;
  tensor::Tensor pt_avg = tensor::Tensor::Zeros({n, n});
  tensor::Tensor tst_avg = tensor::Tensor::Zeros({n, n});
  const int64_t samples = std::min<int64_t>(16, data.test.NumSamples());
  {
    tensor::NoGradGuard no_grad;
    model.teacher().SetTraining(false);
    model.student().SetTraining(false);
    for (int64_t i = 0; i < samples; ++i) {
      core::PromptEmbeddings embeddings = model.clm().EncodeSample(data.test, i);
      core::TimeKdTeacher::Output teacher_out = model.teacher().Forward(
          tensor::Reshape(embeddings.gt, {1, n, embeddings.gt.size(1)}),
          tensor::Reshape(embeddings.hd, {1, n, embeddings.hd.size(1)}));
      data::ForecastBatch batch = data.test.GetBatch({i});
      core::StudentModel::Output student_out =
          model.student().Forward(batch.x);
      for (int64_t j = 0; j < n * n; ++j) {
        pt_avg.data()[j] += teacher_out.attention.at(j) / samples;
        tst_avg.data()[j] += student_out.attention.at(j) / samples;
      }
    }
  }

  std::printf("\n%s\n", RenderHeatMap(pt_avg,
                                      "(a) Privileged Transformer attention "
                                      "A_PE (rows: variables)")
                            .c_str());
  std::printf("%s\n", RenderHeatMap(tst_avg,
                                    "(b) Time-series Transformer attention "
                                    "A_TSE (rows: variables)")
                          .c_str());

  // Quantitative echo of the paper's qualitative claim: the privileged
  // attention distributes mass more globally (higher row entropy).
  auto mean_entropy = [n](const tensor::Tensor& a) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double h = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        const double p = std::max(1e-9f, a.at(i * n + j));
        h -= p * std::log(p);
      }
      total += h;
    }
    return total / static_cast<double>(n);
  };
  std::printf("Mean attention row entropy: privileged=%.3f, student=%.3f "
              "(paper: privileged/global > student/local).\n",
              mean_entropy(pt_avg), mean_entropy(tst_avg));
  timekd::bench::FinishBench("fig8_attention_maps", profile);
  return 0;
}
