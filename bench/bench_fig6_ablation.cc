// Reproduces Figure 6: component ablations of TimeKD on ETTm1, ETTh2,
// Weather and Exchange. Variants: w/o_PI (no privileged information),
// w/o_CA (no calibrated attention), w/o_CLM (no language model), w/o_SCA
// (direct subtraction), w/o_CD (no correlation distillation), w/o_FD (no
// feature distillation). The paper plots averages over all horizons; this
// harness averages over two profile-scaled horizons to bound runtime.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "core/timekd.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "eval/table.h"

int main() {
  using namespace timekd;
  using namespace timekd::eval;

  const BenchProfile profile = GetBenchProfile();
  bench::PrintBanner("Figure 6 (ablation study of TimeKD components)",
                     "w/o_PI, w/o_CA, w/o_CLM, w/o_SCA, w/o_CD, w/o_FD on "
                     "ETTm1/ETTh2/Weather/Exchange",
                     profile);

  struct Variant {
    const char* name;
    std::function<void(core::TimeKdConfig*)> apply;
  };
  const std::vector<Variant> kVariants = {
      {"TimeKD", [](core::TimeKdConfig*) {}},
      {"w/o_PI",
       [](core::TimeKdConfig* c) { c->use_privileged_info = false; }},
      {"w/o_CA",
       [](core::TimeKdConfig* c) { c->use_calibrated_attention = false; }},
      {"w/o_CLM", [](core::TimeKdConfig* c) { c->use_clm = false; }},
      {"w/o_SCA", [](core::TimeKdConfig* c) { c->use_sca = false; }},
      {"w/o_CD",
       [](core::TimeKdConfig* c) { c->use_correlation_distillation = false; }},
      {"w/o_FD",
       [](core::TimeKdConfig* c) { c->use_feature_distillation = false; }},
  };
  const data::DatasetId kDatasets[] = {
      data::DatasetId::kEttm1, data::DatasetId::kEtth2,
      data::DatasetId::kWeather, data::DatasetId::kExchange};
  const int64_t kHorizons[] = {ScaledHorizon(profile, 24),
                               ScaledHorizon(profile, 96)};

  std::vector<std::string> headers = {"Variant"};
  for (data::DatasetId ds : kDatasets) {
    headers.push_back(std::string(data::DatasetName(ds)) + " MSE");
    headers.push_back(std::string(data::DatasetName(ds)) + " MAE");
  }
  TablePrinter table(headers);

  const int64_t seeds = std::max<int64_t>(1, profile.seeds);
  for (const Variant& variant : kVariants) {
    std::vector<std::string> cells = {variant.name};
    for (data::DatasetId dataset : kDatasets) {
      double mse = 0.0;
      double mae = 0.0;
      int64_t count = 0;
      for (int64_t horizon : kHorizons) {
        PreparedData data =
            PrepareData(dataset, horizon, profile, /*train_fraction=*/1.0);
        for (int64_t s = 0; s < seeds; ++s) {
          core::TimeKdConfig config =
              MakeTimeKdConfig(profile, data.num_variables, horizon,
                               data.freq_minutes, 1 + 1000 * s);
          variant.apply(&config);
          core::TimeKd model(config);
          core::TrainConfig tc;
          tc.epochs = profile.epochs;
          tc.teacher_epochs = profile.epochs * 2;
          tc.batch_size = profile.batch_size;
          tc.lr = profile.lr;
          tc.seed = 1 + static_cast<uint64_t>(s);
          model.Fit(data.train, &data.val, tc);
          core::TimeKd::Metrics m = model.Evaluate(data.test);
          mse += m.mse;
          mae += m.mae;
          ++count;
        }
      }
      cells.push_back(TablePrinter::Num(mse / count));
      cells.push_back(TablePrinter::Num(mae / count));
    }
    table.AddRow(cells);
    std::printf("finished variant %s\n", variant.name);
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nPaper shape: the full TimeKD is best everywhere; w/o_CLM weakest, "
      "w/o_FD also clearly degraded, the rest in between.\n");
  timekd::bench::FinishBench("fig6_ablation", profile);
  return 0;
}
