// Reproduces Figure 10: ground truth vs. prediction on ETTh1 for the four
// variables the paper plots (HUFL, MUFL, LUFL, OT).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/timekd.h"
#include "eval/heatmap.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "eval/table.h"

int main() {
  using namespace timekd;
  using namespace timekd::eval;

  const BenchProfile profile = GetBenchProfile();
  bench::PrintBanner("Figure 10 (ground truth vs prediction, ETTh1)",
                     "predicted vs actual curves for HUFL/MUFL/LUFL/OT",
                     profile);

  const int64_t horizon = ScaledHorizon(profile, 96);
  PreparedData data = PrepareData(data::DatasetId::kEtth1, horizon, profile,
                                  /*train_fraction=*/1.0);
  core::TimeKdConfig config = MakeTimeKdConfig(
      profile, data.num_variables, horizon, data.freq_minutes, /*seed=*/1);
  core::TimeKd model(config);
  core::TrainConfig tc;
  tc.epochs = profile.epochs;
  tc.teacher_epochs = profile.epochs * 2;
  tc.batch_size = profile.batch_size;
  tc.lr = profile.lr;
  model.Fit(data.train, &data.val, tc);

  // Stitch several consecutive non-overlapping forecast windows so the
  // curves cover a long horizon like the paper's plots.
  const auto& names = data.test.series().variable_names();
  const int64_t variables[] = {0, 2, 4, 6};  // HUFL, MUFL, LUFL, OT
  const int64_t windows =
      std::min<int64_t>(4, data.test.NumSamples() / horizon);
  for (int64_t v : variables) {
    std::vector<float> truth;
    std::vector<float> prediction;
    for (int64_t w = 0; w < windows; ++w) {
      const int64_t sample = w * horizon;
      data::ForecastBatch batch = data.test.GetBatch({sample});
      tensor::Tensor pred = model.Predict(batch.x);
      for (int64_t t = 0; t < horizon; ++t) {
        truth.push_back(batch.y.at(t * data.num_variables + v));
        prediction.push_back(pred.at(t * data.num_variables + v));
      }
    }
    double se = 0.0;
    for (size_t i = 0; i < truth.size(); ++i) {
      const double d = truth[i] - prediction[i];
      se += d * d;
    }
    std::printf("\n%s\n",
                RenderSeriesComparison(
                    truth, prediction,
                    "Variable " + names[static_cast<size_t>(v)] +
                        "  (stitched " + std::to_string(windows) +
                        " forecast windows, MSE " +
                        TablePrinter::Num(se / truth.size()) + ")")
                    .c_str());
  }
  std::printf("Paper shape: predictions track the periodic structure and "
              "level of each variable.\n");
  timekd::bench::FinishBench("fig10_gt_vs_pred", profile);
  return 0;
}
