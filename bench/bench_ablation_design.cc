// Ablations of this implementation's own design choices (beyond the
// paper's Figure-6 component ablations), as called out in DESIGN.md:
//   (a) calibration strength Δ of Eq. 5 (0 = vanilla mask .. hard split),
//   (b) prompt resolution (value stride / decimal precision) vs. accuracy
//       and one-time CLM cost,
//   (c) the embedding cache: training cost with and without it.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/timekd.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "obs/trace.h"

namespace {

using namespace timekd;
using namespace timekd::eval;
core::TimeKd::Metrics TrainOnce(const core::TimeKdConfig& config,
                                const PreparedData& data,
                                const BenchProfile& profile,
                                double* cache_seconds) {
  core::TimeKd model(config);
  core::TrainConfig tc;
  tc.epochs = profile.epochs;
  tc.teacher_epochs = profile.epochs * 2;
  tc.batch_size = profile.batch_size;
  tc.lr = profile.lr;
  core::FitStats stats = model.Fit(data.train, &data.val, tc);
  if (cache_seconds != nullptr) *cache_seconds = stats.cache_build_seconds;
  return model.Evaluate(data.test);
}

}  // namespace

int main() {
  const BenchProfile profile = GetBenchProfile();
  bench::PrintBanner("Design-choice ablations (this implementation)",
                     "calibration Δ sweep; prompt resolution; embedding "
                     "cache economics — ETTh1, FH=24 scaled",
                     profile);

  const int64_t horizon = ScaledHorizon(profile, 96);
  PreparedData data = PrepareData(data::DatasetId::kEtth1, horizon, profile,
                                  /*train_fraction=*/1.0);

  // --- (a) calibration Δ ----------------------------------------------------
  {
    TablePrinter table({"Delta", "MSE", "MAE"});
    for (float delta : {0.0f, 1.0f, 5.0f, 20.0f, 1e6f}) {
      core::TimeKdConfig config = MakeTimeKdConfig(
          profile, data.num_variables, horizon, data.freq_minutes, 1);
      config.llm.calibration_delta = delta;
      core::TimeKd::Metrics m = TrainOnce(config, data, profile, nullptr);
      table.AddRow({delta >= 1e6f ? "inf (hard split)"
                                  : TablePrinter::Num(delta, 1),
                    TablePrinter::Num(m.mse), TablePrinter::Num(m.mae)});
      std::fflush(stdout);
    }
    std::printf("\n(a) Calibrated-attention strength Δ (Eq. 5; paper "
                "default 5-ish, 0 = w/o_CA):\n");
    table.Print();
  }

  // --- (b) prompt resolution -------------------------------------------------
  {
    TablePrinter table({"Stride", "Precision", "MSE", "Cache (s)"});
    struct Case {
      int stride;
      int precision;
    };
    for (Case c : {Case{8, 0}, Case{8, 1}, Case{4, 1}, Case{2, 1}}) {
      core::TimeKdConfig config = MakeTimeKdConfig(
          profile, data.num_variables, horizon, data.freq_minutes, 1);
      config.prompt.stride = c.stride;
      config.prompt.precision = c.precision;
      double cache_seconds = 0.0;
      core::TimeKd::Metrics m =
          TrainOnce(config, data, profile, &cache_seconds);
      table.AddRow({std::to_string(c.stride), std::to_string(c.precision),
                    TablePrinter::Num(m.mse),
                    TablePrinter::Num(cache_seconds, 2)});
      std::fflush(stdout);
    }
    std::printf("\n(b) Prompt resolution vs accuracy and one-time CLM cost "
                "(paper uses stride 1; the CPU profiles stride to bound "
                "token counts):\n");
    table.Print();
  }

  // --- (c) embedding cache economics ------------------------------------------
  {
    core::TimeKdConfig config = MakeTimeKdConfig(
        profile, data.num_variables, horizon, data.freq_minutes, 1);
    core::TimeKd model(config);

    const obs::WallTimer cache_timer;
    model.WarmCache(data.train);
    const double warm = cache_timer.ElapsedSeconds();

    // One epoch-equivalent of CLM encodes if there were NO cache: re-encode
    // every sample once.
    const obs::WallTimer nocache_timer;
    for (int64_t i = 0; i < data.train.NumSamples(); ++i) {
      core::PromptEmbeddings e = model.clm().EncodeSample(data.train, i);
      (void)e;
    }
    const double per_epoch_uncached = nocache_timer.ElapsedSeconds();

    std::printf(
        "\n(c) Embedding cache: one-time build %.2fs; without the cache "
        "every epoch would re-pay %.2fs of CLM encodes (x%lld epochs). The "
        "paper's 'store the subtracted embeddings' note is this same "
        "trade.\n",
        warm, per_epoch_uncached, static_cast<long long>(profile.epochs));
  }
  timekd::bench::FinishBench("ablation_design", profile);
  return 0;
}
