// Reproduces Table III: ablation of the LLM backbone inside TimeKD
// (BERT vs GPT-2 vs LLaMA-3.2) on Exchange with forecasting horizon 24.
// The paper reports larger backbones giving better accuracy at higher cost;
// GPT-2 is chosen as the default for its efficiency/accuracy balance.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/timekd.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "eval/table.h"

int main() {
  using namespace timekd;
  using namespace timekd::eval;

  const BenchProfile profile = GetBenchProfile();
  bench::PrintBanner("Table III (LLM backbone ablation on Exchange, FH=24)",
                     "BERT 0.110B / GPT-2 0.117B / LLaMA-3.2, MSE/MAE",
                     profile);

  const int64_t horizon = ScaledHorizon(profile, 24);
  PreparedData data = PrepareData(data::DatasetId::kExchange, horizon,
                                  profile, /*train_fraction=*/1.0);

  struct Backbone {
    llm::LlmKind kind;
    const char* paper_name;
    int64_t d_model_scale;  // LLaMA is the widest backbone in the paper
  };
  const Backbone kBackbones[] = {
      {llm::LlmKind::kBertMini, "BERT", 1},
      {llm::LlmKind::kGptMini, "GPT-2", 1},
      {llm::LlmKind::kLlamaMini, "LLaMA-3.2", 2},
  };

  TablePrinter table({"Backbone", "Frozen LLM params", "MSE", "MAE",
                      "Cache build (s)"});
  for (const Backbone& backbone : kBackbones) {
    double mse = 0.0;
    double mae = 0.0;
    double cache_seconds = 0.0;
    int64_t frozen_params = 0;
    const int64_t seeds = std::max<int64_t>(1, profile.seeds);
    for (int64_t s = 0; s < seeds; ++s) {
      core::TimeKdConfig config =
          MakeTimeKdConfig(profile, data.num_variables, horizon,
                           data.freq_minutes, 1 + 1000 * s);
      config.llm.kind = backbone.kind;
      config.llm.d_model *= backbone.d_model_scale;
      config.llm.ffn_hidden *= backbone.d_model_scale;
      core::TimeKd model(config);
      frozen_params = model.clm().NumParameters();

      core::TrainConfig tc;
      tc.epochs = profile.epochs;
      tc.teacher_epochs = profile.epochs * 2;
      tc.batch_size = profile.batch_size;
      tc.lr = profile.lr;
      tc.seed = 1 + static_cast<uint64_t>(s);
      core::FitStats stats = model.Fit(data.train, &data.val, tc);
      (void)stats;
      cache_seconds += stats.cache_build_seconds;
      core::TimeKd::Metrics m = model.Evaluate(data.test);
      mse += m.mse;
      mae += m.mae;
    }
    table.AddRow({backbone.paper_name, std::to_string(frozen_params),
                  TablePrinter::Num(mse / seeds), TablePrinter::Num(mae / seeds),
                  TablePrinter::Num(cache_seconds / seeds, 2)});
  }
  table.Print();
  std::printf(
      "\nPaper shape: LLaMA-3.2 best accuracy at the highest cost; GPT-2 "
      "close behind at a fraction of the size (adopted as default).\n");
  timekd::bench::FinishBench("table3_llm_ablation", profile);
  return 0;
}
