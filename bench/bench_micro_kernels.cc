// Micro-benchmarks of the substrate kernels (google-benchmark): tensor
// ops, attention blocks, prompt tokenization and CLM encoding. These are
// not paper experiments; they document the cost structure underlying the
// Table-IV efficiency numbers.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "llm/language_model.h"
#include "nn/attention.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "text/prompt.h"

namespace {

using timekd::Rng;
using timekd::tensor::Tensor;

/// Wall-clock FLOP/s and bytes/s for a timed loop, from deltas of the
/// analytic roofline counters credited in ops.cc/attention.cc
/// (`<prefix>_flops`, `<prefix>_read_bytes`, `<prefix>_write_bytes`).
/// Construct before the loop, call Report() after it.
///
/// Reported as plain counter values, not benchmark::Counter::kIsRate and
/// not SetItemsProcessed: both of those divide by CPU time, and under the
/// shared thread pool CPU time sums the workers' time, so "items/s" shrinks
/// as parallelism grows (PR 3). The previous SetItemsProcessed figures were
/// also dimensionally off — BM_MatMul used n^3 "items", half the real 2n^3
/// FLOPs. The analytic counters give true FLOPs and compulsory bytes.
class RooflineRates {
 public:
  explicit RooflineRates(std::initializer_list<const char*> prefixes) {
    for (const char* p : prefixes) prefixes_.emplace_back(p);
    base_flops_ = Sum("_flops");
    base_bytes_ = Sum("_read_bytes") + Sum("_write_bytes");
  }

  void Report(benchmark::State& state) const {
    const double seconds = timer_.ElapsedSeconds();
    if (seconds <= 0.0) return;
    const double flops = static_cast<double>(Sum("_flops") - base_flops_);
    const double bytes = static_cast<double>(
        Sum("_read_bytes") + Sum("_write_bytes") - base_bytes_);
    state.counters["flops_per_sec"] = benchmark::Counter(flops / seconds);
    state.counters["bytes_per_sec"] = benchmark::Counter(bytes / seconds);
  }

 private:
  uint64_t Sum(const char* suffix) const {
    uint64_t total = 0;
    for (const std::string& p : prefixes_) {
      total += timekd::obs::GlobalMetrics().GetCounter(p + suffix)->value();
    }
    return total;
  }

  std::vector<std::string> prefixes_;
  uint64_t base_flops_ = 0;
  uint64_t base_bytes_ = 0;
  timekd::obs::WallTimer timer_;
};

// Every credited prefix, for benchmarks that exercise whole modules
// (attention, encoder step) rather than a single kernel.
constexpr std::initializer_list<const char*> kAllKernelPrefixes = {
    "tensor/matmul",      "tensor/matmul_bwd",   "tensor/softmax",
    "tensor/softmax_bwd", "tensor/layernorm",    "tensor/layernorm_bwd",
    "tensor/elementwise", "tensor/transpose",    "nn/rope_tables",
    "nn/fused_attention"};

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandNormal({n, n}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({n, n}, 0, 1, rng);
  TIMEKD_TRACE_SCOPE("kernel/matmul");
  RooflineRates rates({"tensor/matmul"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(timekd::tensor::MatMul(a, b).data());
  }
  rates.Report(state);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Softmax(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::RandNormal({n, n}, 0, 1, rng);
  TIMEKD_TRACE_SCOPE("kernel/softmax");
  RooflineRates rates({"tensor/softmax"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(timekd::tensor::Softmax(x, -1).data());
  }
  rates.Report(state);
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(256);

void BM_LayerNorm(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::RandNormal({rows, 64}, 0, 1, rng);
  Tensor gamma = Tensor::Ones({64});
  Tensor beta = Tensor::Zeros({64});
  TIMEKD_TRACE_SCOPE("kernel/layernorm");
  RooflineRates rates({"tensor/layernorm"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timekd::tensor::LayerNorm(x, gamma, beta, 1e-5f).data());
  }
  rates.Report(state);
}
BENCHMARK(BM_LayerNorm)->Arg(64)->Arg(512);

void BM_AttentionForward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  Rng rng(4);
  timekd::nn::MultiHeadAttention attn(64, 4, 0.0f, &rng);
  attn.SetTraining(false);
  Tensor x = Tensor::RandNormal({1, seq, 64}, 0, 1, rng);
  TIMEKD_TRACE_SCOPE("kernel/attention_forward");
  RooflineRates rates(kAllKernelPrefixes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.SelfForward(x, Tensor()).data());
  }
  rates.Report(state);
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(64)->Arg(128);

// The fused tiled eval-attention kernel (FusedEvalAttention): grad mode
// off + eval mode makes the module take the fused path, whose work is
// credited under its own nn/fused_attention prefix. Contrast with
// BM_AttentionForward, which keeps grad mode on and therefore measures
// the composed-op path the training loop uses.
void BM_FusedAttentionForward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  Rng rng(8);
  timekd::nn::MultiHeadAttention attn(64, 4, 0.0f, &rng);
  attn.SetTraining(false);
  Tensor x = Tensor::RandNormal({1, seq, 64}, 0, 1, rng);
  timekd::tensor::NoGradGuard no_grad;
  TIMEKD_TRACE_SCOPE("kernel/fused_attention_forward");
  RooflineRates rates({"nn/fused_attention"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.SelfForward(x, Tensor()).data());
  }
  rates.Report(state);
}
BENCHMARK(BM_FusedAttentionForward)->Arg(16)->Arg(64)->Arg(128);

void BM_TrainingStepBackward(benchmark::State& state) {
  Rng rng(5);
  timekd::nn::TransformerEncoder encoder(2, 32, 4, 64, 0.0f,
                                         timekd::nn::Activation::kGelu, &rng);
  Tensor x = Tensor::RandNormal({8, 7, 32}, 0, 1, rng);
  TIMEKD_TRACE_SCOPE("kernel/training_step_backward");
  RooflineRates rates(kAllKernelPrefixes);
  for (auto _ : state) {
    Tensor loss = timekd::tensor::Mean(encoder.Forward(x, Tensor()));
    loss.Backward();
    encoder.ZeroGrad();
  }
  rates.Report(state);
}
BENCHMARK(BM_TrainingStepBackward);

void BM_PromptTokenize(benchmark::State& state) {
  timekd::text::PromptBuilder builder;
  timekd::text::PromptSpec spec;
  spec.t_start = 0;
  spec.t_end = 95;
  spec.freq_minutes = 15;
  spec.horizon = 96;
  Rng rng(6);
  for (int i = 0; i < 96; ++i) {
    spec.history.push_back(static_cast<float>(rng.Gaussian()));
    spec.future.push_back(static_cast<float>(rng.Gaussian()));
  }
  TIMEKD_TRACE_SCOPE("kernel/prompt_tokenize");
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.TokenizeGroundTruthPrompt(spec).ids);
  }
}
BENCHMARK(BM_PromptTokenize);

void BM_ClmEncodeLastToken(benchmark::State& state) {
  timekd::llm::LlmConfig config;
  config.vocab_size = timekd::text::Vocab::BuildPromptVocab().size();
  config.d_model = 32;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_hidden = 64;
  timekd::llm::LanguageModel lm(config);
  lm.Freeze();
  lm.SetTraining(false);

  timekd::text::PromptBuilder builder({1, 4});
  timekd::text::PromptSpec spec;
  spec.t_start = 0;
  spec.t_end = 23;
  spec.freq_minutes = 60;
  spec.horizon = 24;
  Rng rng(7);
  for (int i = 0; i < 24; ++i) {
    spec.history.push_back(static_cast<float>(rng.Gaussian()));
    spec.future.push_back(static_cast<float>(rng.Gaussian()));
  }
  const auto prompt = builder.TokenizeGroundTruthPrompt(spec);
  timekd::tensor::NoGradGuard no_grad;
  TIMEKD_TRACE_SCOPE("kernel/clm_encode_last_token");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.EncodeLastToken(prompt, true).data());
  }
}
BENCHMARK(BM_ClmEncodeLastToken);

// Documents the acceptance budget of the observability layer itself: a
// TIMEKD_TRACE_SCOPE with every span sink disabled must cost one relaxed
// atomic load, i.e. this should report low-single-digit nanoseconds. This
// binary enables the profiler sink in main() for the roofline artifact, so
// the sink mask is saved, cleared for the loop, and restored — the probe
// keeps measuring the *disabled* cost it documents.
void BM_DisabledSpanOverhead(benchmark::State& state) {
  namespace oi = timekd::obs::internal;
  const uint32_t saved_sinks = oi::SpanSinks();
  oi::SetSpanSink(oi::kTracerSink, false);
  oi::SetSpanSink(oi::kProfilerSink, false);
  oi::SetSpanSink(oi::kFlightRecorderSink, false);
  for (auto _ : state) {
    TIMEKD_TRACE_SCOPE("bench/span_overhead_probe");
    // With all sinks off the context stack is empty, so Capture() must be
    // a thread-local read returning an invalid context — it shares the
    // disabled-path budget this benchmark documents.
    benchmark::DoNotOptimize(timekd::obs::TraceContext::Capture());
    benchmark::ClobberMemory();
  }
  oi::SetSpanSink(oi::kTracerSink, (saved_sinks & oi::kTracerSink) != 0);
  oi::SetSpanSink(oi::kProfilerSink, (saved_sinks & oi::kProfilerSink) != 0);
  oi::SetSpanSink(oi::kFlightRecorderSink,
                  (saved_sinks & oi::kFlightRecorderSink) != 0);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisabledSpanOverhead);

// Cost of cross-thread context propagation with the profiler sink ON: one
// Capture() plus a context-adopting span, i.e. what every pool shard pays
// on top of a plain span (remote re-attribution mailbox included). Feeds
// kernels.ctx_spans_per_sec in the BENCH artifact, gated by perf_diff's
// kernels family (higher is better).
void BM_ContextPropagationOverhead(benchmark::State& state) {
  namespace oi = timekd::obs::internal;
  const uint32_t saved_sinks = oi::SpanSinks();
  oi::SetSpanSink(oi::kProfilerSink, true);
  {
    timekd::obs::ScopedSpan parent("bench/ctx_parent");
    for (auto _ : state) {
      const timekd::obs::TraceContext ctx =
          timekd::obs::TraceContext::Capture();
      timekd::obs::ScopedSpan span("bench/ctx_probe", &ctx);
      benchmark::ClobberMemory();
    }
  }
  oi::SetSpanSink(oi::kProfilerSink, (saved_sinks & oi::kProfilerSink) != 0);
  timekd::obs::GlobalMetrics()
      .GetCounter("obs/ctx_spans")
      ->Increment(static_cast<uint64_t>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContextPropagationOverhead);

// Recorder-off probe feeding the kernels.recorder_off_spans_per_sec BENCH
// rate (gated by perf_diff's kernels family): spans opened with ALL sinks
// off, including the flight recorder — this is the fast path whose
// "one relaxed load" contract PR-acceptance depends on. The counter is
// bumped once with the iteration count so the artifact rate reflects the
// loop without perturbing it.
void BM_RecorderDisabledSpanOverhead(benchmark::State& state) {
  namespace oi = timekd::obs::internal;
  const uint32_t saved_sinks = oi::SpanSinks();
  oi::SetSpanSink(oi::kTracerSink, false);
  oi::SetSpanSink(oi::kProfilerSink, false);
  oi::SetSpanSink(oi::kFlightRecorderSink, false);
  for (auto _ : state) {
    TIMEKD_TRACE_SCOPE("bench/recorder_off_probe");
    benchmark::ClobberMemory();
  }
  oi::SetSpanSink(oi::kTracerSink, (saved_sinks & oi::kTracerSink) != 0);
  oi::SetSpanSink(oi::kProfilerSink, (saved_sinks & oi::kProfilerSink) != 0);
  oi::SetSpanSink(oi::kFlightRecorderSink,
                  (saved_sinks & oi::kFlightRecorderSink) != 0);
  timekd::obs::GlobalMetrics()
      .GetCounter("obs/recorder_off_spans")
      ->Increment(static_cast<uint64_t>(state.iterations()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecorderDisabledSpanOverhead);

// Idle-render probe feeding kernels.exporter_renders_per_sec: renders the
// full registry (every counter/gauge/histogram this bench binary touched)
// into Prometheus text. Documents the per-scrape cost an operator pays
// while a run serves TIMEKD_METRICS_PORT.
void BM_ExporterIdleRender(benchmark::State& state) {
  const timekd::obs::MetricsSnapshot snap =
      timekd::obs::GlobalMetrics().Snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(timekd::obs::RenderPrometheusText(snap));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExporterIdleRender);

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so the suite gets the standard
// bench plumbing: smoke profile shortens --benchmark_min_time, the whole
// run is covered by one root span for the profiler/BENCH phase breakdown,
// and a BENCH_micro_kernels.json artifact is written for perf_diff.py.
int main(int argc, char** argv) {
  const timekd::eval::BenchProfile profile = timekd::eval::GetBenchProfile();
  timekd::bench::PrintBanner(
      "micro_kernels",
      "substrate kernel cost structure underlying Table IV", profile);

  // Aggregate spans even without TIMEKD_PROFILE_OUT so the BENCH artifact's
  // roofline block has per-kernel wall time to place FLOP and traffic
  // credits on. Enable("") aggregates without scheduling a file dump.
  if (!timekd::obs::Profiler::Get().enabled()) {
    timekd::obs::Profiler::Get().Enable("");
  }
  // Aggregate trace spans too (no file dump) so the BENCH artifact's
  // critical_path block analyzes a real pooled-kernel trace: shard spans,
  // flow edges, and the stall decomposition all come from this buffer.
  if (!timekd::obs::Tracer::Get().enabled()) {
    timekd::obs::Tracer::Get().Enable("");
  }

  std::vector<char*> args(argv, argv + argc);
  // google-benchmark 1.7 takes seconds as a plain double here.
  std::string min_time = "--benchmark_min_time=0.01";
  if (profile.name == "smoke") args.push_back(min_time.data());
  int bench_argc = static_cast<int>(args.size());
  {
    TIMEKD_TRACE_SCOPE("bench/micro_kernels");
    ::benchmark::Initialize(&bench_argc, args.data());
    if (::benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
      return 1;
    }
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
  }
  timekd::bench::FinishBench("micro_kernels", profile);
  return 0;
}
