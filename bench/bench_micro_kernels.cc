// Micro-benchmarks of the substrate kernels (google-benchmark): tensor
// ops, attention blocks, prompt tokenization and CLM encoding. These are
// not paper experiments; they document the cost structure underlying the
// Table-IV efficiency numbers.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "llm/language_model.h"
#include "nn/attention.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "text/prompt.h"

namespace {

using timekd::Rng;
using timekd::tensor::Tensor;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandNormal({n, n}, 0, 1, rng);
  Tensor b = Tensor::RandNormal({n, n}, 0, 1, rng);
  TIMEKD_TRACE_SCOPE("kernel/matmul");
  for (auto _ : state) {
    benchmark::DoNotOptimize(timekd::tensor::MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Softmax(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor x = Tensor::RandNormal({n, n}, 0, 1, rng);
  TIMEKD_TRACE_SCOPE("kernel/softmax");
  for (auto _ : state) {
    benchmark::DoNotOptimize(timekd::tensor::Softmax(x, -1).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(256);

void BM_LayerNorm(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(3);
  Tensor x = Tensor::RandNormal({rows, 64}, 0, 1, rng);
  Tensor gamma = Tensor::Ones({64});
  Tensor beta = Tensor::Zeros({64});
  TIMEKD_TRACE_SCOPE("kernel/layernorm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timekd::tensor::LayerNorm(x, gamma, beta, 1e-5f).data());
  }
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_LayerNorm)->Arg(64)->Arg(512);

void BM_AttentionForward(benchmark::State& state) {
  const int64_t seq = state.range(0);
  Rng rng(4);
  timekd::nn::MultiHeadAttention attn(64, 4, 0.0f, &rng);
  attn.SetTraining(false);
  Tensor x = Tensor::RandNormal({1, seq, 64}, 0, 1, rng);
  TIMEKD_TRACE_SCOPE("kernel/attention_forward");
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.SelfForward(x, Tensor()).data());
  }
  state.SetItemsProcessed(state.iterations() * seq * seq);
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(64)->Arg(128);

void BM_TrainingStepBackward(benchmark::State& state) {
  Rng rng(5);
  timekd::nn::TransformerEncoder encoder(2, 32, 4, 64, 0.0f,
                                         timekd::nn::Activation::kGelu, &rng);
  Tensor x = Tensor::RandNormal({8, 7, 32}, 0, 1, rng);
  TIMEKD_TRACE_SCOPE("kernel/training_step_backward");
  for (auto _ : state) {
    Tensor loss = timekd::tensor::Mean(encoder.Forward(x, Tensor()));
    loss.Backward();
    encoder.ZeroGrad();
  }
}
BENCHMARK(BM_TrainingStepBackward);

void BM_PromptTokenize(benchmark::State& state) {
  timekd::text::PromptBuilder builder;
  timekd::text::PromptSpec spec;
  spec.t_start = 0;
  spec.t_end = 95;
  spec.freq_minutes = 15;
  spec.horizon = 96;
  Rng rng(6);
  for (int i = 0; i < 96; ++i) {
    spec.history.push_back(static_cast<float>(rng.Gaussian()));
    spec.future.push_back(static_cast<float>(rng.Gaussian()));
  }
  TIMEKD_TRACE_SCOPE("kernel/prompt_tokenize");
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.TokenizeGroundTruthPrompt(spec).ids);
  }
}
BENCHMARK(BM_PromptTokenize);

void BM_ClmEncodeLastToken(benchmark::State& state) {
  timekd::llm::LlmConfig config;
  config.vocab_size = timekd::text::Vocab::BuildPromptVocab().size();
  config.d_model = 32;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ffn_hidden = 64;
  timekd::llm::LanguageModel lm(config);
  lm.Freeze();
  lm.SetTraining(false);

  timekd::text::PromptBuilder builder({1, 4});
  timekd::text::PromptSpec spec;
  spec.t_start = 0;
  spec.t_end = 23;
  spec.freq_minutes = 60;
  spec.horizon = 24;
  Rng rng(7);
  for (int i = 0; i < 24; ++i) {
    spec.history.push_back(static_cast<float>(rng.Gaussian()));
    spec.future.push_back(static_cast<float>(rng.Gaussian()));
  }
  const auto prompt = builder.TokenizeGroundTruthPrompt(spec);
  timekd::tensor::NoGradGuard no_grad;
  TIMEKD_TRACE_SCOPE("kernel/clm_encode_last_token");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.EncodeLastToken(prompt, true).data());
  }
}
BENCHMARK(BM_ClmEncodeLastToken);

// Documents the acceptance budget of the observability layer itself: a
// TIMEKD_TRACE_SCOPE with every span sink disabled must cost one relaxed
// atomic load, i.e. this should report low-single-digit nanoseconds. With
// TIMEKD_TRACE_OUT/TIMEKD_PROFILE_OUT set it instead measures the enabled
// span cost.
void BM_DisabledSpanOverhead(benchmark::State& state) {
  for (auto _ : state) {
    TIMEKD_TRACE_SCOPE("bench/span_overhead_probe");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisabledSpanOverhead);

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so the suite gets the standard
// bench plumbing: smoke profile shortens --benchmark_min_time, the whole
// run is covered by one root span for the profiler/BENCH phase breakdown,
// and a BENCH_micro_kernels.json artifact is written for perf_diff.py.
int main(int argc, char** argv) {
  const timekd::eval::BenchProfile profile = timekd::eval::GetBenchProfile();
  timekd::bench::PrintBanner(
      "micro_kernels",
      "substrate kernel cost structure underlying Table IV", profile);

  std::vector<char*> args(argv, argv + argc);
  // google-benchmark 1.7 takes seconds as a plain double here.
  std::string min_time = "--benchmark_min_time=0.01";
  if (profile.name == "smoke") args.push_back(min_time.data());
  int bench_argc = static_cast<int>(args.size());
  {
    TIMEKD_TRACE_SCOPE("bench/micro_kernels");
    ::benchmark::Initialize(&bench_argc, args.data());
    if (::benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
      return 1;
    }
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
  }
  timekd::bench::FinishBench("micro_kernels", profile);
  return 0;
}
