// Reproduces Figure 7: effect of the available training-data fraction
// (20%..100%) on TimeKD, FH 96, on ETTm1/ETTh2/Weather/Exchange.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "eval/table.h"

int main() {
  using namespace timekd;
  using namespace timekd::eval;

  const BenchProfile profile = GetBenchProfile();
  bench::PrintBanner("Figure 7 (scalability: training-data fraction)",
                     "20%-100% of train data, FH 96, TimeKD", profile);

  const int64_t horizon = ScaledHorizon(profile, 96);
  const double kFractions[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  const data::DatasetId kDatasets[] = {
      data::DatasetId::kEttm1, data::DatasetId::kEtth2,
      data::DatasetId::kWeather, data::DatasetId::kExchange};

  std::vector<std::string> headers = {"Train %"};
  for (data::DatasetId ds : kDatasets) {
    headers.push_back(std::string(data::DatasetName(ds)) + " MSE");
    headers.push_back(std::string(data::DatasetName(ds)) + " MAE");
  }
  TablePrinter table(headers);

  // Track monotonicity: the paper's claim is that more data helps.
  int improved = 0;
  int comparisons = 0;
  std::vector<double> prev_mse(4, 1e30);
  for (double fraction : kFractions) {
    std::vector<std::string> cells = {
        TablePrinter::Num(100.0 * fraction, 0) + "%"};
    for (size_t d = 0; d < 4; ++d) {
      RunSpec spec;
      spec.model = ModelKind::kTimeKd;
      spec.dataset = kDatasets[d];
      spec.horizon = horizon;
      spec.profile = profile;
      spec.train_fraction = fraction;
      RunResult r = RunAveraged(spec);
      cells.push_back(TablePrinter::Num(r.mse));
      cells.push_back(TablePrinter::Num(r.mae));
      if (prev_mse[d] < 1e29) {
        ++comparisons;
        if (r.mse <= prev_mse[d] + 1e-12) ++improved;
      }
      prev_mse[d] = r.mse;
    }
    table.AddRow(cells);
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nSummary: MSE improved (or held) in %d/%d fraction increments "
      "(paper: consistent decrease as data grows).\n",
      improved, comparisons);
  timekd::bench::FinishBench("fig7_scalability", profile);
  return 0;
}
