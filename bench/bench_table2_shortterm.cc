// Reproduces Table II: short-term forecasting on PEMS04/PEMS08,
// input 96, forecasting horizon 12, all 7 models (MSE/MAE).

#include <cstdio>
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "eval/table.h"

int main() {
  using namespace timekd;
  using namespace timekd::eval;

  BenchProfile profile = GetBenchProfile();
  // Few configurations here: average at least 2 seeds to tame run noise.
  profile.seeds = std::max<int64_t>(profile.seeds, 2);
  bench::PrintBanner("Table II (short-term forecasting on PEMS, MSE/MAE)",
                     "input 96, FH = 12, PEMS04 (307 sensors) and PEMS08 "
                     "(170 sensors)",
                     profile);
  std::printf("PEMS sensors capped at %lld for this profile.\n",
              static_cast<long long>(profile.pems_variables));

  // FH=12 is already small; run it unscaled in every profile so the
  // short-term task keeps the paper's difficulty.
  const int64_t horizon = 12;
  std::vector<std::string> headers = {"Dataset"};
  for (ModelKind m : AllModels()) {
    headers.push_back(std::string(ModelName(m)) + " MSE");
    headers.push_back(std::string(ModelName(m)) + " MAE");
  }
  TablePrinter table(headers);

  double timekd_mse[2] = {0, 0};
  double best_other[2] = {1e30, 1e30};
  int row = 0;
  for (data::DatasetId dataset :
       {data::DatasetId::kPems04, data::DatasetId::kPems08}) {
    std::vector<std::string> cells = {data::DatasetName(dataset)};
    for (ModelKind model : AllModels()) {
      RunSpec spec;
      spec.model = model;
      spec.dataset = dataset;
      spec.horizon = horizon;
      spec.profile = profile;
      RunResult r = RunAveraged(spec);
      cells.push_back(TablePrinter::Num(r.mse));
      cells.push_back(TablePrinter::Num(r.mae));
      if (model == ModelKind::kTimeKd) {
        timekd_mse[row] = r.mse;
      } else {
        best_other[row] = std::min(best_other[row], r.mse);
      }
    }
    table.AddRow(cells);
    ++row;
  }
  table.Print();
  for (int i = 0; i < 2; ++i) {
    std::printf("%s: TimeKD %s the best baseline by %.1f%% MSE (paper: "
                "10.8%% / 10.3%% vs TimeCMA).\n",
                i == 0 ? "PEMS04" : "PEMS08",
                timekd_mse[i] < best_other[i] ? "beats" : "trails",
                100.0 * (best_other[i] - timekd_mse[i]) / best_other[i]);
  }
  timekd::bench::FinishBench("table2_shortterm", profile);
  return 0;
}
