// Reproduces Table I: long-term forecasting comparison.
// Paper: 6 datasets (ETTm1/ETTm2/ETTh1/ETTh2/Weather/Exchange) x
// horizons {24, 36, 48, 96, 192} x 7 models, MSE/MAE, input length 96.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "data/datasets.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace {

using timekd::data::DatasetId;
using timekd::data::DatasetName;
using timekd::eval::AllModels;
using timekd::eval::BenchProfile;
using timekd::eval::ModelKind;
using timekd::eval::ModelName;
using timekd::eval::RunAveraged;
using timekd::eval::RunResult;
using timekd::eval::RunSpec;
using timekd::eval::ScaledHorizon;
using timekd::eval::TablePrinter;

constexpr DatasetId kDatasets[] = {
    DatasetId::kEttm1, DatasetId::kEttm2,   DatasetId::kEtth1,
    DatasetId::kEtth2, DatasetId::kWeather, DatasetId::kExchange};
constexpr int64_t kPaperHorizons[] = {24, 36, 48, 96, 192};

}  // namespace

int main() {
  const BenchProfile profile = timekd::eval::GetBenchProfile();
  timekd::bench::PrintBanner(
      "Table I (long-term forecasting, MSE/MAE)",
      "input 96, FH in {24,36,48,96,192}, 6 datasets, 7 models", profile);

  const std::vector<ModelKind> models = AllModels();
  int timekd_wins_mse = 0;
  int timekd_wins_mae = 0;
  int cells = 0;

  for (DatasetId dataset : kDatasets) {
    std::vector<std::string> headers = {"FH(paper)", "FH(run)"};
    for (ModelKind m : models) {
      headers.push_back(std::string(ModelName(m)) + " MSE");
      headers.push_back(std::string(ModelName(m)) + " MAE");
    }
    TablePrinter table(headers);

    std::map<ModelKind, std::pair<double, double>> sums;
    for (int64_t paper_h : kPaperHorizons) {
      const int64_t horizon = ScaledHorizon(profile, paper_h);
      std::vector<std::string> row = {std::to_string(paper_h),
                                      std::to_string(horizon)};
      double best_mse = 1e30;
      double best_mae = 1e30;
      double timekd_mse = 0.0;
      double timekd_mae = 0.0;
      for (ModelKind model : models) {
        RunSpec spec;
        spec.model = model;
        spec.dataset = dataset;
        spec.horizon = horizon;
        spec.profile = profile;
        RunResult r = RunAveraged(spec);
        row.push_back(TablePrinter::Num(r.mse));
        row.push_back(TablePrinter::Num(r.mae));
        sums[model].first += r.mse;
        sums[model].second += r.mae;
        if (model == ModelKind::kTimeKd) {
          timekd_mse = r.mse;
          timekd_mae = r.mae;
        }
        best_mse = std::min(best_mse, r.mse);
        best_mae = std::min(best_mae, r.mae);
      }
      ++cells;
      if (timekd_mse <= best_mse + 1e-12) ++timekd_wins_mse;
      if (timekd_mae <= best_mae + 1e-12) ++timekd_wins_mae;
      table.AddRow(row);
    }
    // Average row, as in the paper.
    std::vector<std::string> avg_row = {"Avg", ""};
    const double inv = 1.0 / static_cast<double>(std::size(kPaperHorizons));
    for (ModelKind model : models) {
      avg_row.push_back(TablePrinter::Num(sums[model].first * inv));
      avg_row.push_back(TablePrinter::Num(sums[model].second * inv));
    }
    table.AddSeparator();
    table.AddRow(avg_row);

    std::printf("\n--- %s ---\n", DatasetName(dataset));
    table.Print();
    std::fflush(stdout);
  }

  std::printf(
      "\nSummary: TimeKD best MSE in %d/%d dataset-horizon cells, best MAE "
      "in %d/%d (paper: best in all cells).\n",
      timekd_wins_mse, cells, timekd_wins_mae, cells);
  timekd::bench::FinishBench("table1_longterm", profile);
  return 0;
}
