#ifndef TIMEKD_BENCH_BENCH_UTIL_H_
#define TIMEKD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "eval/profile.h"

namespace timekd::bench {

/// Prints the standard banner: which experiment is being reproduced and at
/// what scale. Every bench binary calls this first so the output files are
/// self-describing.
inline void PrintBanner(const std::string& experiment,
                        const std::string& paper_setting,
                        const eval::BenchProfile& profile) {
  std::printf("==============================================================\n");
  std::printf("TimeKD reproduction — %s\n", experiment.c_str());
  std::printf("Paper setting : %s\n", paper_setting.c_str());
  std::printf(
      "Profile       : %s (set TIMEKD_BENCH_PROFILE=smoke|small|paper)\n",
      profile.name.c_str());
  std::printf(
      "Scale         : series_len=%lld, input_len=%lld, horizon_scale=%.3f, "
      "epochs=%lld, seeds=%lld, d_model=%lld, llm_layers=%lld\n",
      static_cast<long long>(profile.dataset_length),
      static_cast<long long>(profile.input_len), profile.horizon_scale,
      static_cast<long long>(profile.epochs),
      static_cast<long long>(profile.seeds),
      static_cast<long long>(profile.d_model),
      static_cast<long long>(profile.llm_layers));
  std::printf("==============================================================\n");
}

}  // namespace timekd::bench

#endif  // TIMEKD_BENCH_BENCH_UTIL_H_
