#ifndef TIMEKD_BENCH_BENCH_UTIL_H_
#define TIMEKD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/bench_artifact.h"
#include "eval/profile.h"
#include "eval/runner.h"
#include "obs/observer.h"

namespace timekd::bench {

/// Prints the standard banner: which experiment is being reproduced and at
/// what scale. Every bench binary calls this first so the output files are
/// self-describing. It also names the experiment for the machine-readable
/// run report: when TIMEKD_RUN_REPORT is set, a "banner" record is
/// appended and every subsequent RunExperiment appends a "run" record with
/// this experiment name attached (see docs/observability.md).
inline void PrintBanner(const std::string& experiment,
                        const std::string& paper_setting,
                        const eval::BenchProfile& profile) {
  std::printf("==============================================================\n");
  std::printf("TimeKD reproduction — %s\n", experiment.c_str());
  std::printf("Paper setting : %s\n", paper_setting.c_str());
  std::printf(
      "Profile       : %s (set TIMEKD_BENCH_PROFILE=smoke|small|paper)\n",
      profile.name.c_str());
  std::printf(
      "Scale         : series_len=%lld, input_len=%lld, horizon_scale=%.3f, "
      "epochs=%lld, seeds=%lld, d_model=%lld, llm_layers=%lld\n",
      static_cast<long long>(profile.dataset_length),
      static_cast<long long>(profile.input_len), profile.horizon_scale,
      static_cast<long long>(profile.epochs),
      static_cast<long long>(profile.seeds),
      static_cast<long long>(profile.d_model),
      static_cast<long long>(profile.llm_layers));
  std::printf("==============================================================\n");

  eval::SetRunReportContext(experiment);
  const char* report_path = std::getenv("TIMEKD_RUN_REPORT");
  if (report_path != nullptr && *report_path != '\0') {
    obs::JsonlWriter writer(report_path);
    obs::JsonObject obj;
    obj.Set("kind", "banner")
        .Set("experiment", experiment)
        .Set("paper_setting", paper_setting)
        .Set("profile", profile.name)
        .Set("dataset_length", profile.dataset_length)
        .Set("input_len", profile.input_len)
        .Set("horizon_scale", profile.horizon_scale)
        .Set("epochs", profile.epochs)
        .Set("seeds", profile.seeds)
        .Set("d_model", profile.d_model)
        .Set("llm_layers", profile.llm_layers)
        .SetRaw("provenance", eval::ProvenanceJson(profile.name));
    writer.WriteLine(obj);
  }
}

/// Writes the standardized BENCH_<experiment>.json perf artifact (see
/// eval/bench_artifact.h) and announces its path. Every bench binary calls
/// this last so `tools/perf_diff.py` always has an artifact to gate on.
inline void FinishBench(const std::string& experiment,
                        const eval::BenchProfile& profile) {
  std::string path;
  const Status status = eval::WriteBenchArtifact(experiment, profile, &path);
  if (status.ok()) {
    std::printf("Bench artifact: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "bench artifact not written: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace timekd::bench

#endif  // TIMEKD_BENCH_BENCH_UTIL_H_
