#!/usr/bin/env bash
# End-to-end correctness gate: lint + three build configurations, each with
# the full ctest suite. This is what "the tree is clean" means for this
# repo; run it before merging anything that touches src/.
#
#   default    RelWithDebInfo, -Werror, lint + all tests (includes the
#              target-scoped asan_smoke test)
#   asan-ubsan address+undefined sanitizers, TIMEKD_DEBUG_CHECKS=ON
#   tsan       thread sanitizer (obs stress test + full suite)
#
# Usage: tools/check.sh [--fast]
#   --fast  default build only (lint + tests); skips the sanitizer matrix.
#
# See docs/static_analysis.md for the full workflow.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

# Intentional leaked singletons are documented in tools/sanitizers/lsan.supp;
# everything else LSan finds is a real leak. UBSan findings always fail.
export LSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/lsan.supp"
export UBSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/ubsan.supp:print_stacktrace=1:halt_on_error=1"
# die_after_fork=0 keeps gtest death tests (fork-based) working under TSan.
export TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp:die_after_fork=0"

step() { printf '\n=== %s ===\n' "$*"; }

run_config() {
  local preset="$1"
  step "configure [$preset]"
  cmake --preset "$preset"
  step "build [$preset]"
  cmake --build --preset "$preset" -j "$JOBS"
  step "test [$preset]"
  ctest --preset "$preset" -j "$JOBS"
}

# Kernel determinism + pool stress with an oversubscribed pool: the suite
# already runs in the preset's full ctest pass with the default pool size,
# but the bit-identity and race guarantees must also hold when the ambient
# TIMEKD_NUM_THREADS exceeds the core count.
run_determinism() {
  local preset="$1"
  step "determinism suite [$preset, TIMEKD_NUM_THREADS=8]"
  TIMEKD_NUM_THREADS=8 ctest --preset "$preset" \
    -R 'DeterminismTest|ThreadPool' --output-on-failure
}

step "lint"
python3 tools/lint/timekd_lint.py --root "$ROOT" --format-check

run_config default
run_determinism default

if [[ "$FAST" == "0" ]]; then
  run_config asan-ubsan
  run_config tsan
  run_determinism tsan
fi

step "all checks passed"
