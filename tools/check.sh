#!/usr/bin/env bash
# End-to-end correctness gate: lint + three build configurations, each with
# the full ctest suite. This is what "the tree is clean" means for this
# repo; run it before merging anything that touches src/.
#
#   default    RelWithDebInfo, -Werror, lint + all tests (includes the
#              target-scoped asan_smoke test)
#   asan-ubsan address+undefined sanitizers, TIMEKD_DEBUG_CHECKS=ON
#   tsan       thread sanitizer (obs stress test + full suite)
#   tidy       clang -Wthread-safety + clang-tidy gate + negative-compile
#              harness; SKIPPED WITH A LOUD WARNING when clang/clang-tidy
#              are not installed (the lint-side lock rules still run).
#
# Usage: tools/check.sh [--fast]
#   --fast  default build only (lint + tests); skips the sanitizer matrix
#           and the tidy build, keeping the lint-only static checks.
#
# See docs/static_analysis.md for the full workflow.

set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
JOBS="$(nproc 2>/dev/null || echo 2)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

# Intentional leaked singletons are documented in tools/sanitizers/lsan.supp;
# everything else LSan finds is a real leak. UBSan findings always fail.
export LSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/lsan.supp"
export UBSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/ubsan.supp:print_stacktrace=1:halt_on_error=1"
# die_after_fork=0 keeps gtest death tests (fork-based) working under TSan.
export TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp:die_after_fork=0"

step() { printf '\n=== %s ===\n' "$*"; }

run_config() {
  local preset="$1"
  step "configure [$preset]"
  cmake --preset "$preset"
  step "build [$preset]"
  cmake --build --preset "$preset" -j "$JOBS"
  step "test [$preset]"
  ctest --preset "$preset" -j "$JOBS"
}

# Kernel determinism + pool stress with an oversubscribed pool: the suite
# already runs in the preset's full ctest pass with the default pool size,
# but the bit-identity and race guarantees must also hold when the ambient
# TIMEKD_NUM_THREADS exceeds the core count.
run_determinism() {
  local preset="$1"
  step "determinism suite [$preset, TIMEKD_NUM_THREADS=8]"
  TIMEKD_NUM_THREADS=8 ctest --preset "$preset" \
    -R 'DeterminismTest|ThreadPool' --output-on-failure
}

# Kernel-equivalence suite: SIMD/cache-blocked kernels vs the retained
# scalar references over randomized and tile-edge shapes, plus fused vs
# composed attention. Runs in every preset's full ctest pass already; this
# focused re-run keeps it visible as its own gate step because the ragged
# lane tails are exactly where the sanitizer builds earn their keep.
run_equivalence() {
  local preset="$1"
  step "kernel equivalence suite [$preset]"
  ctest --preset "$preset" \
    -R 'KernelEquivalence|RowKernelEquivalence|FusedAttentionEquivalence' \
    --output-on-failure
}

# Health-watchdog suite: the cases run in every preset's full ctest pass
# already, but this focused re-run keeps the fail-fast death tests and the
# crash/reparse case visible as their own gate step — they guard artifacts
# (JSONL event streams, HTML reports) that outlive the process, which is
# exactly where sanitizer builds tend to diverge from the default build.
run_health() {
  local preset="$1"
  step "health suite [$preset]"
  ctest --preset "$preset" -R 'Health|Report|JsonlCrash' --output-on-failure
}

# Telemetry suite: the live Prometheus exporter (TCP scrape under a
# concurrent registry writer), the crash flight recorder (SIGSEGV /
# health-abort death tests proving a parseable dump), and the forecast
# calibration observatory. Focused re-run for the same reason as run_health:
# these guard crash-time artifacts and cross-thread scrape paths, which is
# where the sanitizer presets diverge from the default build.
run_telemetry() {
  local preset="$1"
  step "telemetry suite [$preset]"
  ctest --preset "$preset" \
    -R 'Exporter|FlightRecorder|ForecastAuditor|Prometheus|PromParser' \
    --output-on-failure
}

# Causality suite: cross-thread TraceContext capture/adoption through the
# pool, critical-path/slack analysis, and the stall decomposition. Focused
# re-run because the concurrent-capture stress case is a TSan target and
# the context hand-off (submit under the pool mutex, adopt on a worker) is
# exactly the kind of cross-thread publication the sanitizer presets exist
# to check.
run_causality() {
  local preset="$1"
  step "causality suite [$preset]"
  ctest --preset "$preset" -R 'CriticalPath|TraceContext|ThreadPool' \
    --output-on-failure
}

# Perf-gate smoke: run the micro-kernel bench twice at the smoke profile
# and require tools/perf_diff.py to pass the pair. This catches broken
# BENCH artifact emission, schema drift the gate can't parse, and noise
# floors tuned so tight that back-to-back identical builds already "regress"
# (which would make the gate useless against real changes).
run_perf_gate() {
  step "perf gate [bench_micro_kernels smoke, self-compare]"
  local out
  out="$(mktemp -d)"
  TIMEKD_BENCH_PROFILE=smoke TIMEKD_BENCH_OUT_DIR="$out" \
    ./build/bench/bench_micro_kernels >/dev/null
  mv "$out/BENCH_micro_kernels.json" "$out/baseline.json"
  TIMEKD_BENCH_PROFILE=smoke TIMEKD_BENCH_OUT_DIR="$out" \
    ./build/bench/bench_micro_kernels >/dev/null
  # One retry with a fresh candidate run: a single OS-scheduling outlier on
  # a loaded box must not fail the gate, a real regression fails twice.
  if ! python3 tools/perf_diff.py "$out/baseline.json" \
      "$out/BENCH_micro_kernels.json"; then
    echo "perf gate: retrying once with a fresh candidate run"
    TIMEKD_BENCH_PROFILE=smoke TIMEKD_BENCH_OUT_DIR="$out" \
      ./build/bench/bench_micro_kernels >/dev/null
    python3 tools/perf_diff.py "$out/baseline.json" \
      "$out/BENCH_micro_kernels.json"
  fi

  # Trend gate: the candidate must also hold against the rolling median of
  # the last 5 comparable runs in the bench/history ledger (empty history
  # passes). Gate BEFORE appending, so a regressing run never becomes part
  # of its own baseline; append only after it held.
  step "perf trend gate [--against-history 5]"
  python3 tools/perf_diff.py --against-history 5 --history bench/history \
    "$out/BENCH_micro_kernels.json"
  python3 tools/perf_history.py append --history bench/history \
    "$out/BENCH_micro_kernels.json"
  rm -rf "$out"
}

# Clang static-analysis gate: builds the `tidy` preset (thread-safety
# analysis promoted to errors, negative-compile harness registered) and
# runs the diff-aware clang-tidy driver against its compile database.
# Degrades to a loud skip on GCC-only machines — the annotations compile
# away there, so only a clang build actually verifies them.
run_tidy_gate() {
  if ! command -v clang++ >/dev/null 2>&1; then
    step "tidy [SKIPPED]"
    echo "WARNING: clang++ not found; skipping the -Wthread-safety build," >&2
    echo "WARNING: the negative-compile harness, and clang-tidy. Install" >&2
    echo "WARNING: LLVM to verify the thread-safety annotations." >&2
    return 0
  fi
  run_config tidy
  step "clang-tidy [diff-aware vs tools/lint/tidy_baseline.json]"
  python3 tools/run_tidy.py --root "$ROOT" --build-dir "$ROOT/build-tidy"
}

step "lint [timekd_lint + rule self-test fixtures]"
python3 tools/lint/timekd_lint.py --root "$ROOT" --format-check --self-test

run_config default
run_determinism default
run_equivalence default
run_health default
run_telemetry default
run_causality default
run_perf_gate

if [[ "$FAST" == "0" ]]; then
  run_config asan-ubsan
  run_equivalence asan-ubsan
  run_health asan-ubsan
  run_telemetry asan-ubsan
  run_causality asan-ubsan
  run_config tsan
  run_determinism tsan
  run_equivalence tsan
  run_health tsan
  run_telemetry tsan
  run_causality tsan
  run_tidy_gate
fi

step "all checks passed"
