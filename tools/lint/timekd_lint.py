#!/usr/bin/env python3
"""timekd_lint: repo-specific invariant checks the compiler cannot enforce.

Rules (all stdlib-only, no third-party deps):

  ops-shape-check   Every function in src/tensor/ops.cc that touches raw
                    storage via .data() must run a TIMEKD_CHECK* /
                    TIMEKD_DCHECK* validation before the first access.
  kernel-accounting Every function in src/tensor/ops.cc and
                    src/nn/attention.cc that opens a TIMEKD_TRACE_SCOPE
                    must credit both FLOPs (obs::AddSpanFlops or a
                    KernelCounters Credit call) and memory traffic
                    (obs::AddSpanMemTraffic or Credit), so the roofline
                    attribution never silently loses a kernel. Escape:
                    a documented `timekd-lint: allow(kernel-accounting)`.
  header-guard      Headers carry TIMEKD_<PATH>_H_ include guards derived
                    from their path (src/ prefix stripped).
  stdout-io         No std::cout / printf-family stdout writes outside
                    src/cli, bench/ and examples/; library code must go
                    through common/logging.
  new-delete        No raw new/delete outside Make* factories. Intentional
                    leaked singletons carry a `timekd-lint: allow(...)`
                    comment with a reason.
  test-determinism  Tests must not consume wall-clock time or ambient
                    randomness (system_clock, rand, random_device, ...).
  raw-thread        No direct std::thread construction outside
                    src/common/thread_pool.*: kernel-side parallelism goes
                    through ParallelFor so sizing, determinism, and the
                    pool metrics stay centralized. Multi-threaded stress
                    tests carry a documented allow comment.
  raw-clock         No direct std::chrono::{steady,system,high_resolution}_
                    clock use outside src/obs and src/common: all wall-time
                    measurement goes through obs::WallTimer /
                    Tracer::NowMicros so every timer shares one origin and
                    the profiler/tracer/BENCH artifacts stay comparable.
  health-observer   Every .cc in src/ that defines a Fit(...) taking a
                    TrainConfig must reference obs::HealthMonitor
                    (obs/health.h), so new training loops inherit the
                    NaN/spike/plateau watchdog and its JSONL/HTML run
                    artifacts. Deliberate exceptions carry a documented
                    `timekd-lint: allow(health-observer)`.
  lock-annotation   No raw std::mutex/std::shared_mutex declarations in
                    src/: locks go through timekd::Mutex + the TIMEKD_*
                    annotation macros (common/thread_annotations.h) so
                    clang's -Wthread-safety analysis sees every acquisition.
                    Each declared Mutex must have at least one
                    TIMEKD_GUARDED_BY / TIMEKD_PT_GUARDED_BY field naming
                    it in the same file, or a documented
                    `timekd-lint: allow(lock-annotation)` explaining what
                    non-field state it protects.
  atomic-order      Every explicitly weakened memory order (relaxed,
                    acquire, release, acq_rel, consume) in src/ needs a
                    justifying comment on the same line or within the 4
                    lines above, so readers never have to reverse-engineer
                    why seq_cst was not enough. (Any comment in the window
                    counts — the rule enforces that an explanation exists,
                    not its wording.) Escape: a documented
                    `timekd-lint: allow(atomic-order)`.
  metric-name       Metric names registered via GetCounter/GetGauge/
                    GetHistogram string literals in src/ and bench/ must be
                    lowercase `[a-z0-9_]` segments joined by `/` with a
                    registered first segment (METRIC_NAME_PREFIXES), so the
                    Prometheus exporter's mangling stays a pure `/` -> `_`
                    substitution and the exposition namespace never forks.
                    Escape: a documented `timekd-lint: allow(metric-name)`.
  simd-fallback     Files using AVX intrinsics must gate them on
                    TIMEKD_SIMD_AVX2 (tensor/simd.h), and every
                    `<Name>Avx2` kernel needs a `<Name>Scalar` sibling in
                    the same file — the always-compiled reference that the
                    kernel-equivalence suite compares against and that
                    non-AVX2 builds dispatch to. Escape: a documented
                    `timekd-lint: allow(simd-fallback)`.
  span-context      No ParallelFor/ParallelForShards definitions outside
                    src/common/thread_pool.*, and files that open trace
                    spans and call ParallelFor* must include
                    "common/thread_pool.h" directly: the pool's submit
                    path is the single fan-out point that propagates
                    obs::TraceContext (job-derived shard names, flow
                    edges, remote re-attribution) to shard spans. Escape:
                    a documented `timekd-lint: allow(span-context)`.

Suppression: a finding on line N of a rule R is suppressed when line N or
line N-1 contains `timekd-lint: allow(R)`. Use sparingly and document why.

Self-test (--self-test): runs the embedded positive/negative/suppression
fixture cases for the concurrency rules against a temp tree before the
normal scan, so a rule regression fails the same ctest entry that enforces
the rules.

Format mode (--format-check): whitespace hygiene (tabs, trailing blanks,
CRLF, missing final newline) plus `clang-format --dry-run` when the binary
exists. Only new/changed files (vs. git HEAD + untracked) are checked so a
formatting policy cannot force history rewrites; pass --all-files to sweep
the whole tree.

Exit status: 0 = clean, 1 = violations found, 2 = usage/environment error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

CXX_EXTENSIONS = (".cc", ".h", ".cpp")
ALLOW_RE = re.compile(r"timekd-lint:\s*allow\(([a-z-]+)\)")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based, 0 = whole-file finding
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


def read_lines(root, relpath):
    with open(os.path.join(root, relpath), encoding="utf-8") as f:
        return f.read().splitlines()


def strip_comments_and_strings(lines):
    """Blanks out comments and string/char literals, keeping line structure.

    A simple state machine is enough for this codebase (no raw strings, no
    trigraphs); it keeps column positions stable by replacing stripped
    characters with spaces.
    """
    out = []
    in_block = False
    for line in lines:
        res = []
        i = 0
        n = len(line)
        while i < n:
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    res.append("  ")
                    i += 2
                else:
                    res.append(" ")
                    i += 1
            elif ch == "/" and nxt == "/":
                res.append(" " * (n - i))
                break
            elif ch == "/" and nxt == "*":
                in_block = True
                res.append("  ")
                i += 2
            elif ch in "\"'":
                quote = ch
                res.append(" ")
                i += 1
                while i < n:
                    if line[i] == "\\":
                        res.append("  ")
                        i += 2
                    elif line[i] == quote:
                        res.append(" ")
                        i += 1
                        break
                    else:
                        res.append(" ")
                        i += 1
            else:
                res.append(ch)
                i += 1
        out.append("".join(res))
    return out


def is_allowed(rule, raw_lines, lineno):
    """True when line `lineno` (1-based) or the one above allows `rule`."""
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(raw_lines):
            m = ALLOW_RE.search(raw_lines[candidate - 1])
            if m and m.group(1) == rule:
                return True
    return False


def iter_files(root, subdirs, extensions):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(extensions):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


# --- Rule: header-guard ----------------------------------------------------


def expected_guard(relpath):
    path = relpath
    if path.startswith("src/"):
        path = path[len("src/"):]
    return "TIMEKD_" + re.sub(r"[^A-Za-z0-9]", "_", path).upper() + "_"


def check_header_guards(root, findings):
    for rel in iter_files(root, ["src", "bench", "tests"], (".h",)):
        lines = read_lines(root, rel)
        guard = expected_guard(rel)
        ifndef = None
        for idx, line in enumerate(lines):
            m = re.match(r"\s*#ifndef\s+(\S+)", line)
            if m:
                ifndef = (idx + 1, m.group(1))
                break
        if ifndef is None:
            findings.append(
                Finding("header-guard", rel, 0,
                        f"missing include guard (expected {guard})"))
            continue
        lineno, actual = ifndef
        if actual != guard:
            findings.append(
                Finding("header-guard", rel, lineno,
                        f"guard {actual} should be {guard}"))
            continue
        if not any(re.match(rf"\s*#define\s+{re.escape(guard)}\b", l)
                   for l in lines):
            findings.append(
                Finding("header-guard", rel, lineno,
                        f"#ifndef {guard} has no matching #define"))


# --- Rule: stdout-io -------------------------------------------------------

STDOUT_PATTERNS = [
    (re.compile(r"\bstd::cout\b"), "std::cout"),
    (re.compile(r"(?<![\w:.>])printf\s*\("), "printf()"),
    (re.compile(r"\bstd::printf\s*\("), "std::printf()"),
    (re.compile(r"(?<![\w:.>])puts\s*\("), "puts()"),
    (re.compile(r"\bstd::puts\s*\("), "std::puts()"),
    (re.compile(r"\bfprintf\s*\(\s*stdout\b"), "fprintf(stdout, ...)"),
    (re.compile(r"\bfputs\s*\([^;()]*,\s*stdout\s*\)"), "fputs(..., stdout)"),
]

STDOUT_EXEMPT_PREFIXES = ("src/cli/",)


def check_stdout_io(root, findings):
    for rel in iter_files(root, ["src", "tests"], CXX_EXTENSIONS):
        if rel.startswith(STDOUT_EXEMPT_PREFIXES):
            continue
        raw = read_lines(root, rel)
        code = strip_comments_and_strings(raw)
        for idx, line in enumerate(code):
            for pattern, label in STDOUT_PATTERNS:
                if pattern.search(line):
                    if is_allowed("stdout-io", raw, idx + 1):
                        continue
                    findings.append(
                        Finding("stdout-io", rel, idx + 1,
                                f"{label} outside src/cli|bench|examples; "
                                "use common/logging"))


# --- Rule: new-delete ------------------------------------------------------

NEW_RE = re.compile(r"(?<![\w:])new\s+[A-Za-z_:][\w:<>, ]*")
DELETE_RE = re.compile(r"(?<![\w:])delete(\[\])?\s+[A-Za-z_]")
FUNC_NAME_RE = re.compile(r"(\w+)\s*\([^;{}]*\)\s*(const\s*)?\{?\s*$")


def check_new_delete(root, findings):
    for rel in iter_files(root, ["src"], CXX_EXTENSIONS):
        raw = read_lines(root, rel)
        code = strip_comments_and_strings(raw)
        for idx, line in enumerate(code):
            hit = None
            col = 0
            m = NEW_RE.search(line)
            if m:
                hit = "raw new"
                col = m.start()
            else:
                m = DELETE_RE.search(line)
                if m and "= delete" not in line:
                    hit = "raw delete"
                    col = m.start()
            if hit is None:
                continue
            if is_allowed("new-delete", raw, idx + 1):
                continue
            if enclosing_make_factory(code, idx, col):
                continue
            findings.append(
                Finding("new-delete", rel, idx + 1,
                        f"{hit} outside a Make* factory; use "
                        "std::make_unique/make_shared or add a documented "
                        "timekd-lint: allow(new-delete)"))


def enclosing_make_factory(code, idx, col):
    """True when position (`idx`, `col`) sits inside a Make* function.

    Scans backwards, balancing braces; only text before `col` counts on the
    hit line itself, so single-line factories are recognised too.
    """
    depth = 0
    for back in range(idx, -1, -1):
        line = code[back][:col] if back == idx else code[back]
        depth += line.count("}") - line.count("{")
        if depth < 0:  # crossed into an enclosing scope opener
            head = line[:line.rfind("{")]
            m = FUNC_NAME_RE.search(head)
            if m is None and back > 0:
                m = FUNC_NAME_RE.search(code[back - 1])
            if m and m.group(1).startswith("Make"):
                return True
            depth = 0  # keep scanning further out
    return False


# --- Rule: ops-shape-check -------------------------------------------------

OPS_FILE = "src/tensor/ops.cc"
FUNC_DEF_RE = re.compile(
    r"^(?:template\s*<[^>]*>\s*)?"
    r"(?:Tensor|void|float|std::vector<[^>]+>)\s+"
    r"(\w+)\s*\(")
CHECK_RE = re.compile(r"\bTIMEKD_D?CHECK(_EQ|_NE|_LT|_LE|_GT|_GE)?\s*\(")
DATA_RE = re.compile(r"\.\s*data\s*\(\s*\)")


def check_ops_shape_checks(root, findings):
    try:
        raw = read_lines(root, OPS_FILE)
    except FileNotFoundError:
        findings.append(Finding("ops-shape-check", OPS_FILE, 0,
                                "file not found"))
        return
    code = strip_comments_and_strings(raw)
    idx = 0
    n = len(code)
    while idx < n:
        m = FUNC_DEF_RE.match(code[idx])
        if m is None:
            idx += 1
            continue
        name = m.group(1)
        # Find the opening brace of the definition (skip declarations).
        open_idx = idx
        while open_idx < n and "{" not in code[open_idx]:
            if ";" in code[open_idx]:
                open_idx = None
                break
            open_idx += 1
        if open_idx is None:
            idx += 1
            continue
        # Walk the brace-balanced body.
        depth = 0
        body_start = open_idx
        end_idx = open_idx
        for j in range(open_idx, n):
            depth += code[j].count("{") - code[j].count("}")
            if depth == 0:
                end_idx = j
                break
        else:
            end_idx = n - 1
        first_check = None
        first_data = None
        for j in range(body_start, end_idx + 1):
            if first_check is None and CHECK_RE.search(code[j]):
                first_check = j
            if first_data is None and DATA_RE.search(code[j]):
                first_data = j
            if first_check is not None and first_data is not None:
                break
        if first_data is not None and (first_check is None
                                       or first_check > first_data):
            if not is_allowed("ops-shape-check", raw, first_data + 1):
                findings.append(
                    Finding("ops-shape-check", OPS_FILE, first_data + 1,
                            f"{name}() touches .data() before any "
                            "TIMEKD_CHECK*/TIMEKD_DCHECK* shape validation"))
        idx = end_idx + 1


# --- Rule: kernel-accounting -----------------------------------------------

# Kernel files where a traced span implies roofline crediting. A function
# that opens a TIMEKD_TRACE_SCOPE must credit both FLOPs (AddSpanFlops or a
# KernelCounters .Credit(...) call, which does both) and memory traffic
# (AddSpanMemTraffic or .Credit(...)), so the profiler's roofline
# attribution and the BENCH artifact never silently lose a kernel.
KERNEL_FILES = ("src/tensor/ops.cc", "src/nn/attention.cc")
KERNEL_FUNC_DEF_RE = re.compile(
    r"^(?:template\s*<[^>]*>\s*)?"
    r"(?:Tensor|void|float|std::vector<[^>]+>)\s+"
    r"((?:[A-Za-z_]\w*::)?\w+)\s*\(")
TRACE_SCOPE_RE = re.compile(r"\bTIMEKD_TRACE_SCOPE\s*\(")
FLOP_CREDIT_RE = re.compile(r"\bAddSpanFlops\s*\(|\.\s*Credit\s*\(")
TRAFFIC_CREDIT_RE = re.compile(r"\bAddSpanMemTraffic\s*\(|\.\s*Credit\s*\(")


def check_kernel_accounting(root, findings):
    for rel in KERNEL_FILES:
        try:
            raw = read_lines(root, rel)
        except FileNotFoundError:
            findings.append(Finding("kernel-accounting", rel, 0,
                                    "file not found"))
            continue
        code = strip_comments_and_strings(raw)
        idx = 0
        n = len(code)
        while idx < n:
            m = KERNEL_FUNC_DEF_RE.match(code[idx])
            if m is None:
                idx += 1
                continue
            name = m.group(1)
            open_idx = idx
            while open_idx < n and "{" not in code[open_idx]:
                if ";" in code[open_idx]:
                    open_idx = None
                    break
                open_idx += 1
            if open_idx is None:
                idx += 1
                continue
            depth = 0
            end_idx = open_idx
            for j in range(open_idx, n):
                depth += code[j].count("{") - code[j].count("}")
                if depth == 0:
                    end_idx = j
                    break
            else:
                end_idx = n - 1
            body = code[open_idx:end_idx + 1]
            scope_line = None
            for j, line in enumerate(body):
                if TRACE_SCOPE_RE.search(line):
                    scope_line = open_idx + j + 1  # 1-based
                    break
            if scope_line is not None:
                has_flops = any(FLOP_CREDIT_RE.search(l) for l in body)
                has_traffic = any(TRAFFIC_CREDIT_RE.search(l) for l in body)
                if not (has_flops and has_traffic):
                    if not is_allowed("kernel-accounting", raw, scope_line):
                        missing = []
                        if not has_flops:
                            missing.append("FLOPs (AddSpanFlops/.Credit)")
                        if not has_traffic:
                            missing.append(
                                "traffic (AddSpanMemTraffic/.Credit)")
                        findings.append(Finding(
                            "kernel-accounting", rel, scope_line,
                            f"{name}() opens a TIMEKD_TRACE_SCOPE but never "
                            f"credits {' or '.join(missing)}; see "
                            "obs/profiler.h, or add a documented "
                            "timekd-lint: allow(kernel-accounting)"))
            idx = end_idx + 1


# --- Rule: test-determinism ------------------------------------------------

NONDETERMINISM_PATTERNS = [
    (re.compile(r"\bsystem_clock\b"), "system_clock (wall clock)"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])srand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:.])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(0|NULL|nullptr)?\s*\)"),
     "time()"),
    (re.compile(r"\b(localtime|gmtime)(_r)?\s*\("), "calendar time"),
]


def check_test_determinism(root, findings):
    for rel in iter_files(root, ["tests"], CXX_EXTENSIONS):
        raw = read_lines(root, rel)
        code = strip_comments_and_strings(raw)
        for idx, line in enumerate(code):
            for pattern, label in NONDETERMINISM_PATTERNS:
                if pattern.search(line):
                    if is_allowed("test-determinism", raw, idx + 1):
                        continue
                    findings.append(
                        Finding("test-determinism", rel, idx + 1,
                                f"{label} makes this test nondeterministic; "
                                "use steady_clock or a seeded Rng"))


# --- Rule: raw-thread ------------------------------------------------------

# std::this_thread (sleeps, yield, get_id) and hardware_concurrency queries
# are fine; constructing threads is what must go through the pool.
RAW_THREAD_RE = re.compile(
    r"\bstd::(thread|jthread)\b(?!::hardware_concurrency)")
RAW_THREAD_EXEMPT = (
    "src/common/thread_pool.h",
    "src/common/thread_pool.cc",
)


def check_raw_thread(root, findings):
    for rel in iter_files(root, ["src", "tests", "bench"], CXX_EXTENSIONS):
        if rel in RAW_THREAD_EXEMPT:
            continue
        raw = read_lines(root, rel)
        code = strip_comments_and_strings(raw)
        for idx, line in enumerate(code):
            if RAW_THREAD_RE.search(line):
                if is_allowed("raw-thread", raw, idx + 1):
                    continue
                findings.append(
                    Finding("raw-thread", rel, idx + 1,
                            "direct std::thread outside "
                            "src/common/thread_pool.*; use ParallelFor "
                            "(common/thread_pool.h) or add a documented "
                            "timekd-lint: allow(raw-thread)"))


# --- Rule: raw-clock -------------------------------------------------------

# std::chrono durations/time_point arithmetic are fine; naming a concrete
# clock is what forks the time base. src/obs owns the clock (trace.cc) and
# src/common may log wall-clock timestamps (logging.cc).
RAW_CLOCK_RE = re.compile(
    r"\bstd::chrono::(steady_clock|system_clock|high_resolution_clock)\b")
RAW_CLOCK_EXEMPT_PREFIXES = ("src/obs/", "src/common/")


def check_raw_clock(root, findings):
    for rel in iter_files(root, ["src", "bench"], CXX_EXTENSIONS):
        if rel.startswith(RAW_CLOCK_EXEMPT_PREFIXES):
            continue
        raw = read_lines(root, rel)
        code = strip_comments_and_strings(raw)
        for idx, line in enumerate(code):
            m = RAW_CLOCK_RE.search(line)
            if m:
                if is_allowed("raw-clock", raw, idx + 1):
                    continue
                findings.append(
                    Finding("raw-clock", rel, idx + 1,
                            f"std::chrono::{m.group(1)} outside "
                            "src/obs|src/common; use obs::WallTimer "
                            "(obs/trace.h) or add a documented "
                            "timekd-lint: allow(raw-clock)"))


# --- Rule: metric-name -----------------------------------------------------

# Registration sites name metrics with string literals, so the scan runs on
# raw lines (the comment/string stripper would blank the name). Names built
# at runtime are out of scope — every current registration is a literal.
METRIC_REG_RE = re.compile(r'\bGet(?:Counter|Gauge|Histogram)\s*\(\s*"([^"]*)"')
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(/[a-z0-9_]+)+$")
# First path segment of every metric family; extend deliberately when a new
# subsystem starts exporting (keeps dashboards from accreting typo'd
# namespaces like "forcast/" next to "forecast/").
METRIC_NAME_PREFIXES = frozenset({
    "bench", "clm", "distill", "eval", "fit", "forecast", "health", "mem",
    "nn", "obs", "optimizer", "tensor", "threadpool",
})


def check_metric_name(root, findings):
    for rel in iter_files(root, ["src", "bench"], CXX_EXTENSIONS):
        raw = read_lines(root, rel)
        for idx, line in enumerate(raw):
            for m in METRIC_REG_RE.finditer(line):
                name = m.group(1)
                if is_allowed("metric-name", raw, idx + 1):
                    continue
                if not METRIC_NAME_RE.match(name):
                    findings.append(
                        Finding("metric-name", rel, idx + 1,
                                f'metric name "{name}" must be lowercase '
                                "[a-z0-9_] segments joined by '/' (e.g. "
                                '"obs/exporter_scrapes") so the Prometheus '
                                "mangling stays a pure '/' -> '_' swap"))
                elif name.split("/")[0] not in METRIC_NAME_PREFIXES:
                    findings.append(
                        Finding("metric-name", rel, idx + 1,
                                f'metric prefix "{name.split("/")[0]}/" is '
                                "not in METRIC_NAME_PREFIXES "
                                "(tools/lint/timekd_lint.py); register the "
                                "new namespace there or reuse an existing "
                                "one"))


# --- Rule: health-observer -------------------------------------------------

# src/obs hosts the monitor itself; everywhere else a Fit(...TrainConfig...)
# definition must wire it (records flow through the watchdog to the user
# observer, anomalies feed health/* metrics and the run report).
HEALTH_FIT_RE = re.compile(r"\bFit\s*\(")
HEALTH_MONITOR_RE = re.compile(r"\bHealthMonitor\b")
HEALTH_EXEMPT_PREFIXES = ("src/obs/",)


def check_health_observer(root, findings):
    for rel in iter_files(root, ["src"], (".cc",)):
        if rel.startswith(HEALTH_EXEMPT_PREFIXES):
            continue
        raw = read_lines(root, rel)
        code = strip_comments_and_strings(raw)
        has_monitor = any(HEALTH_MONITOR_RE.search(l) for l in code)
        for idx, line in enumerate(code):
            m = HEALTH_FIT_RE.search(line)
            if m is None:
                continue
            # Join the parameter list across lines (signatures wrap).
            sig = []
            depth = 0
            opened = False
            for j in range(idx, min(idx + 12, len(code))):
                text = code[j][m.start():] if j == idx else code[j]
                sig.append(text)
                depth += text.count("(") - text.count(")")
                opened = opened or "(" in text
                if opened and depth <= 0:
                    break
            if "TrainConfig" not in " ".join(sig):
                continue  # a call site or an unrelated Fit
            if has_monitor or is_allowed("health-observer", raw, idx + 1):
                continue
            findings.append(
                Finding("health-observer", rel, idx + 1,
                        "Fit(...TrainConfig...) without an obs::HealthMonitor"
                        "; wrap the observer (see core/timekd.cc) or add a "
                        "documented timekd-lint: allow(health-observer)"))
            break


# --- Rule: lock-annotation ---------------------------------------------------

# A raw standard mutex *declaration*: the type followed by whitespace and an
# identifier. Template arguments (std::unique_lock<std::mutex>) and the
# native_handle() accessor (std::mutex&) deliberately do not match.
RAW_MUTEX_RE = re.compile(
    r"(?<![\w:])std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex)\s+[A-Za-z_]")
# A timekd::Mutex declaration (member, local, or static).
ANNOTATED_MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+)*Mutex\s+(\w+)\s*;")
GUARDED_BY_RE = re.compile(r"TIMEKD_(?:PT_)?GUARDED_BY\(\s*(\w+)")
# The annotation layer itself wraps std::mutex by definition.
LOCK_ANNOTATION_EXEMPT = ("src/common/thread_annotations.h",)


def check_lock_annotation(root, findings):
    for rel in iter_files(root, ["src"], CXX_EXTENSIONS):
        if rel in LOCK_ANNOTATION_EXEMPT:
            continue
        raw = read_lines(root, rel)
        code = strip_comments_and_strings(raw)
        guarded = set()
        for line in code:
            for m in GUARDED_BY_RE.finditer(line):
                guarded.add(m.group(1))
        for idx, line in enumerate(code):
            m = RAW_MUTEX_RE.search(line)
            if m:
                if not is_allowed("lock-annotation", raw, idx + 1):
                    findings.append(Finding(
                        "lock-annotation", rel, idx + 1,
                        f"raw std::{m.group(1)} declaration; use "
                        "timekd::Mutex + TIMEKD_GUARDED_BY "
                        "(common/thread_annotations.h) so the clang "
                        "thread-safety analysis sees it, or add a "
                        "documented timekd-lint: allow(lock-annotation)"))
                continue
            m = ANNOTATED_MUTEX_DECL_RE.match(line)
            if m and m.group(1) not in guarded:
                if not is_allowed("lock-annotation", raw, idx + 1):
                    findings.append(Finding(
                        "lock-annotation", rel, idx + 1,
                        f"Mutex {m.group(1)} guards no TIMEKD_GUARDED_BY/"
                        "TIMEKD_PT_GUARDED_BY field in this file; annotate "
                        "what it protects, or document the non-field state "
                        "it guards with timekd-lint: allow(lock-annotation)"))


# --- Rule: atomic-order ------------------------------------------------------

# Explicitly weakened orders only: spelling out seq_cst is redundant but
# harmless, and plain .load()/.store() defaults need no justification.
ATOMIC_ORDER_RE = re.compile(
    r"\bmemory_order(?:::|_)(relaxed|acquire|release|acq_rel|consume)\b")
ATOMIC_ORDER_LOOKBACK = 4


def line_has_comment(line):
    """True when `line` starts a // or /* comment outside string literals."""
    i = 0
    n = len(line)
    while i < n:
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt in "/*":
            return True
        if ch in "\"'":
            quote = ch
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                elif line[i] == quote:
                    i += 1
                    break
                else:
                    i += 1
        else:
            i += 1
    return False


def has_justifying_comment(raw, code, idx):
    """Comment on line `idx` (0-based) or within the lookback window above.

    A line whose code strips to nothing while its raw text is non-empty sits
    inside a multi-line block comment and counts too.
    """
    for j in range(idx, max(-1, idx - ATOMIC_ORDER_LOOKBACK - 1), -1):
        if line_has_comment(raw[j]):
            return True
        if raw[j].strip() and not code[j].strip():
            return True
    return False


def check_atomic_order(root, findings):
    for rel in iter_files(root, ["src"], CXX_EXTENSIONS):
        raw = read_lines(root, rel)
        code = strip_comments_and_strings(raw)
        for idx, line in enumerate(code):
            m = ATOMIC_ORDER_RE.search(line)
            if m is None:
                continue
            if is_allowed("atomic-order", raw, idx + 1):
                continue
            if has_justifying_comment(raw, code, idx):
                continue
            findings.append(Finding(
                "atomic-order", rel, idx + 1,
                f"memory_order {m.group(1)} without a justifying comment on "
                f"this line or the {ATOMIC_ORDER_LOOKBACK} above; say why "
                "the weakened ordering is safe, or add a documented "
                "timekd-lint: allow(atomic-order)"))


# --- Rule: simd-fallback ---------------------------------------------------

SIMD_INTRINSIC_RE = re.compile(r"\b_mm(?:256|512)_[a-z0-9_]+")
SIMD_FN_NAME_RE = re.compile(r"\b(\w+?)(Avx2|Scalar)\b")


def check_simd_fallback(root, findings):
    """Vectorized kernels must keep their scalar fallback alive.

    Two obligations on every src/ file that uses AVX intrinsics:
      1. The file must reference TIMEKD_SIMD_AVX2 (the ISA feature macro
         from tensor/simd.h), so the intrinsics are compiled out cleanly on
         non-AVX2 targets and under TIMEKD_SIMD=OFF instead of breaking
         the build.
      2. Every `<Name>Avx2` kernel must have a `<Name>Scalar` sibling in
         the same file — the always-compiled reference the equivalence
         suite compares against and the fallback the dispatch wrapper
         selects. A vectorized kernel whose scalar twin was deleted (or
         renamed away) silently loses both its portability and its test
         oracle.
    Escape: a documented `timekd-lint: allow(simd-fallback)`.
    """
    for rel in iter_files(root, ["src"], CXX_EXTENSIONS):
        raw = read_lines(root, rel)
        code = strip_comments_and_strings(raw)
        has_guard = any("TIMEKD_SIMD_AVX2" in line for line in raw)
        avx_names = {}     # name -> first definition/use line (1-based)
        scalar_names = set()
        intrinsic_line = None
        for idx, line in enumerate(code):
            if intrinsic_line is None and SIMD_INTRINSIC_RE.search(line):
                intrinsic_line = idx + 1
            for m in SIMD_FN_NAME_RE.finditer(line):
                if m.group(2) == "Avx2":
                    avx_names.setdefault(m.group(1), idx + 1)
                else:
                    scalar_names.add(m.group(1))
        if intrinsic_line is not None and not has_guard:
            if not is_allowed("simd-fallback", raw, intrinsic_line):
                findings.append(Finding(
                    "simd-fallback", rel, intrinsic_line,
                    "AVX intrinsics without a TIMEKD_SIMD_AVX2 guard; gate "
                    "the vector path on the feature macro from "
                    "tensor/simd.h so non-AVX2 builds fall back to scalar"))
        for name, lineno in sorted(avx_names.items()):
            if name in scalar_names:
                continue
            if is_allowed("simd-fallback", raw, lineno):
                continue
            findings.append(Finding(
                "simd-fallback", rel, lineno,
                f"{name}Avx2 has no {name}Scalar fallback in this file; "
                "keep the scalar reference compiled so the kernel-"
                "equivalence suite has an oracle and non-AVX2 builds "
                "still link"))


# --- Rule: span-context ----------------------------------------------------

# Definition of a ParallelFor/ParallelForShards function (return type +
# optionally qualified name + open paren). Calls look like
# "pool.ParallelFor(" / "ParallelFor(0, n, ..." and do not match.
SPAN_CONTEXT_DEF_RE = re.compile(
    r"\b(?:void|auto|int|int64_t|Status)\s+(?:[\w:]+::)?"
    r"ParallelFor(?:Shards)?\s*\(")
SPAN_CONTEXT_CALL_RE = re.compile(r"\bParallelFor(?:Shards)?\s*\(")
SPAN_CONTEXT_INCLUDE_RE = re.compile(r'#\s*include\s+"common/thread_pool\.h"')


def check_span_context(root, findings):
    """Fan-out must go through the context-propagating pool submit path.

    Cross-thread trace causality (obs::TraceContext capture at submit,
    adoption by shard spans, remote re-attribution in the profiler) lives
    in ThreadPool::DispatchJob. Two obligations keep it the single fan-out
    point:
      1. No file outside src/common/thread_pool.* may DEFINE a function
         named ParallelFor/ParallelForShards — a second primitive would
         fan work out of instrumented spans without carrying the context,
         and the flow edges / critical-path analysis silently lose those
         shards.
      2. A file that opens TIMEKD_TRACE_SCOPE spans and calls ParallelFor*
         must include "common/thread_pool.h" directly, so the call
         demonstrably resolves to the pool's context-capturing submit path
         rather than some transitively-picked-up lookalike.
    Escape: a documented `timekd-lint: allow(span-context)`.
    """
    for rel in iter_files(root, ["src", "bench"], CXX_EXTENSIONS):
        if rel.startswith("src/common/thread_pool."):
            continue
        raw = read_lines(root, rel)
        code = strip_comments_and_strings(raw)
        # The include itself is a string; scan raw lines for it.
        has_include = any(SPAN_CONTEXT_INCLUDE_RE.search(line) for line in raw)
        has_trace_scope = any("TIMEKD_TRACE_SCOPE" in line for line in code)
        call_flagged = False
        for idx, line in enumerate(code):
            if SPAN_CONTEXT_DEF_RE.search(line):
                if is_allowed("span-context", raw, idx + 1):
                    continue
                findings.append(Finding(
                    "span-context", rel, idx + 1,
                    "ParallelFor/ParallelForShards defined outside "
                    "src/common/thread_pool.*; the pool's submit path is "
                    "the only fan-out point that propagates "
                    "obs::TraceContext to shard spans"))
            elif (has_trace_scope and not has_include and not call_flagged
                  and SPAN_CONTEXT_CALL_RE.search(line)):
                if is_allowed("span-context", raw, idx + 1):
                    continue
                call_flagged = True  # one finding per file is enough
                findings.append(Finding(
                    "span-context", rel, idx + 1,
                    "traced file calls ParallelFor* without including "
                    '"common/thread_pool.h"; include the pool header so '
                    "the call resolves to the context-propagating submit "
                    "path"))


# --- Format mode -----------------------------------------------------------


def changed_files(root):
    """C++ files changed vs. HEAD plus untracked ones (format scope)."""
    files = set()
    for args in (["git", "diff", "--name-only", "HEAD"],
                 ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            out = subprocess.run(args, cwd=root, capture_output=True,
                                 text=True, check=True).stdout
        except (subprocess.CalledProcessError, FileNotFoundError):
            return None
        files.update(line.strip() for line in out.splitlines() if line.strip())
    return sorted(f for f in files
                  if f.endswith(CXX_EXTENSIONS)
                  and os.path.isfile(os.path.join(root, f)))


def check_format(root, findings, all_files):
    if all_files:
        targets = list(iter_files(root, ["src", "tests", "bench", "examples"],
                                  CXX_EXTENSIONS))
    else:
        targets = changed_files(root)
        if targets is None:
            print("timekd_lint: git unavailable; skipping format scope "
                  "detection", file=sys.stderr)
            return
    for rel in targets:
        try:
            with open(os.path.join(root, rel), "rb") as f:
                blob = f.read()
        except FileNotFoundError:
            continue
        if b"\r\n" in blob:
            findings.append(Finding("format", rel, 0, "CRLF line endings"))
        if blob and not blob.endswith(b"\n"):
            findings.append(Finding("format", rel, 0, "missing final newline"))
        for idx, line in enumerate(blob.decode("utf-8",
                                               "replace").splitlines()):
            if "\t" in line:
                findings.append(
                    Finding("format", rel, idx + 1, "tab character"))
            if line.rstrip() != line:
                findings.append(
                    Finding("format", rel, idx + 1, "trailing whitespace"))
    clang_format = shutil.which("clang-format")
    if clang_format and targets:
        proc = subprocess.run(
            [clang_format, "--dry-run", "-Werror", "--style=file"] +
            [os.path.join(root, t) for t in targets],
            capture_output=True, text=True)
        if proc.returncode != 0:
            for line in proc.stderr.splitlines():
                m = re.match(r"(.+?):(\d+):\d+: (?:error|warning): (.*)", line)
                if m:
                    findings.append(
                        Finding("format", os.path.relpath(m.group(1), root),
                                int(m.group(2)), m.group(3)))
    elif not clang_format:
        print("timekd_lint: clang-format not found; built-in whitespace "
              "checks only", file=sys.stderr)


# --- Self-test fixtures -----------------------------------------------------

# (case name, rule, fixture source written to src/fixture.cc, expected
# finding count). Positive cases prove the rule fires, negative cases prove
# it stays quiet on idiomatic code, suppression cases prove the allow
# escape hatch works.
SELF_TEST_CASES = [
    ("lock-annotation flags raw std::mutex member", "lock-annotation",
     "class C {\n  std::mutex mu_;\n};\n", 1),
    ("lock-annotation flags raw std::shared_mutex", "lock-annotation",
     "class C {\n  std::shared_mutex mu_;\n};\n", 1),
    ("lock-annotation flags unguarded Mutex", "lock-annotation",
     "class C {\n  mutable Mutex mu_;\n  int x_ = 0;\n};\n", 1),
    ("lock-annotation accepts guarded Mutex", "lock-annotation",
     "class C {\n  mutable Mutex mu_;\n"
     "  int x_ TIMEKD_GUARDED_BY(mu_) = 0;\n};\n", 0),
    ("lock-annotation accepts PT_GUARDED_BY", "lock-annotation",
     "class C {\n  Mutex mu_;\n"
     "  FILE* f_ TIMEKD_PT_GUARDED_BY(mu_) = nullptr;\n};\n", 0),
    ("lock-annotation ignores lock templates", "lock-annotation",
     "void F() {\n  std::unique_lock<std::mutex> lock(m.native_handle());\n"
     "  std::lock_guard<std::mutex> g(m2.native_handle());\n}\n", 0),
    ("lock-annotation honors allow on raw mutex", "lock-annotation",
     "class C {\n"
     "  std::mutex mu_;  // timekd-lint: allow(lock-annotation)\n};\n", 0),
    ("lock-annotation honors allow on unguarded Mutex", "lock-annotation",
     "class C {\n  // guards a phase: timekd-lint: allow(lock-annotation)\n"
     "  Mutex mu_;\n};\n", 0),
    ("atomic-order flags bare relaxed", "atomic-order",
     "uint64_t F() {\n\n\n\n\n"
     "  return v.load(std::memory_order_relaxed);\n}\n", 1),
    ("atomic-order flags bare release", "atomic-order",
     "void F() {\n\n\n\n\n"
     "  go.store(true, std::memory_order_release);\n}\n", 1),
    ("atomic-order accepts same-line comment", "atomic-order",
     "uint64_t F() {\n"
     "  return v.load(std::memory_order_relaxed);  // relaxed: a tally\n"
     "}\n", 0),
    ("atomic-order accepts comment 3 lines above", "atomic-order",
     "// relaxed: advisory counter, nothing ordered against it.\n"
     "uint64_t F() {\n  return\n"
     "      v.load(std::memory_order_relaxed);\n}\n", 0),
    ("atomic-order rejects comment beyond lookback", "atomic-order",
     "// relaxed: too far away to count.\n\n\n\n\n\n"
     "uint64_t F() { return v.load(std::memory_order_relaxed); }\n", 1),
    ("atomic-order ignores explicit seq_cst", "atomic-order",
     "uint64_t F() {\n\n\n\n\n"
     "  return v.load(std::memory_order_seq_cst);\n}\n", 0),
    ("atomic-order ignores default orders", "atomic-order",
     "uint64_t F() {\n\n\n\n\n  return v.load();\n}\n", 0),
    ("atomic-order honors allow", "atomic-order",
     "uint64_t F() {\n\n\n\n"
     "  // timekd-lint: allow(atomic-order)\n"
     "  return v.load(std::memory_order_relaxed);\n}\n", 0),
    ("metric-name flags uppercase name", "metric-name",
     'void F() {\n  obs::GlobalMetrics().GetCounter("Obs/Scrapes");\n}\n', 1),
    ("metric-name flags single-segment name", "metric-name",
     'void F() {\n  obs::GlobalMetrics().GetGauge("verdict");\n}\n', 1),
    ("metric-name flags unregistered prefix", "metric-name",
     'void F() {\n  reg.GetHistogram("forcast/mse", bounds);\n}\n', 1),
    ("metric-name accepts registered lowercase path", "metric-name",
     'void F() {\n  reg.GetCounter("obs/exporter_scrapes")->Increment();\n'
     '  reg.GetGauge("forecast/coverage95")->Set(0.95);\n}\n', 0),
    ("metric-name ignores non-literal names", "metric-name",
     "void F(const std::string& name) {\n  reg.GetCounter(name);\n}\n", 0),
    ("metric-name honors allow", "metric-name",
     "void F() {\n  // legacy dashboard: timekd-lint: allow(metric-name)\n"
     '  reg.GetGauge("Legacy/Name");\n}\n', 0),
    ("simd-fallback flags unguarded intrinsics", "simd-fallback",
     "inline void F(float* x) {\n"
     "  _mm256_storeu_ps(x, _mm256_setzero_ps());\n}\n", 1),
    ("simd-fallback flags Avx2 kernel without Scalar twin", "simd-fallback",
     "#if TIMEKD_SIMD_AVX2\n"
     "inline void FooAvx2(float* x) { _mm256_storeu_ps(x, v); }\n"
     "#endif\n", 1),
    ("simd-fallback accepts guarded kernel with Scalar twin",
     "simd-fallback",
     "inline void FooScalar(float* x) { x[0] = 0; }\n"
     "#if TIMEKD_SIMD_AVX2\n"
     "inline void FooAvx2(float* x) { _mm256_storeu_ps(x, v); }\n"
     "#endif\n"
     "inline void Foo(float* x) {\n"
     "#if TIMEKD_SIMD_AVX2\n  FooAvx2(x);\n#else\n  FooScalar(x);\n#endif\n"
     "}\n", 0),
    ("simd-fallback ignores scalar-only files", "simd-fallback",
     "inline void FooScalar(float* x) { x[0] = 0; }\n", 0),
    ("simd-fallback honors allow", "simd-fallback",
     "#if TIMEKD_SIMD_AVX2\n"
     "// one-off probe: timekd-lint: allow(simd-fallback)\n"
     "inline void FooAvx2(float* x) { _mm256_storeu_ps(x, v); }\n"
     "#endif\n", 0),
    ("span-context flags rogue ParallelFor definition", "span-context",
     "void ParallelFor(int64_t b, int64_t e, int64_t g, const F& fn) {\n"
     "  for (int64_t i = b; i < e; ++i) fn(i, i + 1);\n}\n", 1),
    ("span-context flags rogue ParallelForShards method", "span-context",
     "void MyPool::ParallelForShards(int64_t b, int64_t e, int64_t g,\n"
     "                               const F& fn) {}\n", 1),
    ("span-context flags traced call without pool include", "span-context",
     '#include "obs/trace.h"\n'
     "void F() {\n  TIMEKD_TRACE_SCOPE(\"tensor/op\");\n"
     "  ParallelFor(0, 128, 16, [](int64_t b, int64_t e) {});\n}\n", 1),
    ("span-context accepts traced call with pool include", "span-context",
     '#include "common/thread_pool.h"\n#include "obs/trace.h"\n'
     "void F() {\n  TIMEKD_TRACE_SCOPE(\"tensor/op\");\n"
     "  ParallelFor(0, 128, 16, [](int64_t b, int64_t e) {});\n}\n", 0),
    ("span-context ignores untraced callers", "span-context",
     "void F() {\n"
     "  ParallelFor(0, 128, 16, [](int64_t b, int64_t e) {});\n}\n", 0),
    ("span-context honors allow", "span-context",
     "// test shim: timekd-lint: allow(span-context)\n"
     "void ParallelFor(int64_t b, int64_t e) {}\n", 0),
]


def run_self_test():
    """Runs the fixture cases; returns a list of failure descriptions."""
    import tempfile

    failures = []
    for name, rule, source, expected in SELF_TEST_CASES:
        with tempfile.TemporaryDirectory(prefix="timekd_lint_") as tmp:
            os.makedirs(os.path.join(tmp, "src"))
            with open(os.path.join(tmp, "src", "fixture.cc"), "w",
                      encoding="utf-8") as f:
                f.write(source)
            findings = []
            RULES[rule](tmp, findings)
            hits = [f for f in findings if f.rule == rule]
            if len(hits) != expected:
                detail = "; ".join(str(f) for f in hits) or "no findings"
                failures.append(f"{name}: expected {expected} finding(s), "
                                f"got {len(hits)} ({detail})")
    return failures


# --- Driver ----------------------------------------------------------------

RULES = {
    "ops-shape-check": check_ops_shape_checks,
    "kernel-accounting": check_kernel_accounting,
    "header-guard": check_header_guards,
    "stdout-io": check_stdout_io,
    "new-delete": check_new_delete,
    "test-determinism": check_test_determinism,
    "raw-thread": check_raw_thread,
    "raw-clock": check_raw_clock,
    "metric-name": check_metric_name,
    "health-observer": check_health_observer,
    "lock-annotation": check_lock_annotation,
    "atomic-order": check_atomic_order,
    "simd-fallback": check_simd_fallback,
    "span-context": check_span_context,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--rule", action="append", choices=sorted(RULES),
                        help="run only the named rule (repeatable)")
    parser.add_argument("--format-check", action="store_true",
                        help="also run the formatting checks")
    parser.add_argument("--all-files", action="store_true",
                        help="format-check the whole tree, not just "
                             "new/changed files")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-rule summary")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule fixtures before the scan")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"timekd_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    if args.self_test:
        failures = run_self_test()
        if failures:
            for failure in failures:
                print(f"timekd_lint self-test FAILED: {failure}")
            return 1
        if not args.quiet:
            print(f"timekd_lint: {len(SELF_TEST_CASES)} self-test fixture "
                  "case(s) passed", file=sys.stderr)

    findings = []
    selected = args.rule or sorted(RULES)
    for rule in selected:
        RULES[rule](root, findings)
    if args.format_check:
        check_format(root, findings, args.all_files)

    for finding in findings:
        print(finding)
    if not args.quiet:
        scope = "+format" if args.format_check else ""
        print(f"timekd_lint: {len(findings)} violation(s) across "
              f"{len(selected)} rule(s){scope}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
