#!/usr/bin/env python3
"""run_tidy: diff-aware clang-tidy gate with a committed baseline.

Runs clang-tidy (config: .clang-tidy at the repo root) over the repo's C++
sources using a compile_commands.json produced by any CMake preset (all of
them export one; the `tidy` preset additionally builds with clang and
-Wthread-safety). Findings are compared against the committed baseline at
tools/lint/tidy_baseline.json:

  * a finding NOT in the baseline is NEW and fails the gate (exit 1);
  * baseline entries that no longer fire are reported as stale so the
    baseline can be shrunk (never grown) in the same change that fixes
    them.

Diff-awareness: by default only files changed vs. git HEAD (plus untracked
files) are analyzed, so the gate scales with the change, not the repo.
--all-files sweeps every translation unit in the compile database — use it
when editing .clang-tidy or refreshing the baseline.

Baseline matching is line-number-free on purpose: a finding is identified
by (path, check, message), so unrelated edits that shift lines do not
invalidate the baseline. The baseline starts (and should stay) empty —
it exists so a future clang-tidy upgrade that introduces findings in old
code can land without blocking, not as a dumping ground for new code.

Environment degradation: when clang-tidy is not installed this script
prints a loud warning and exits 0, so the surrounding gates (ctest entry,
tools/check.sh stage) stay green on GCC-only machines while still running
for anyone with LLVM installed. Set CLANG_TIDY to point at a specific
binary.

Self-test (--self-test): exercises the diagnostic parser and the baseline
matcher on embedded fixtures before the normal run; no clang-tidy needed.

Exit status: 0 = clean (or tool unavailable), 1 = new findings or
self-test failure, 2 = usage/environment error.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

CXX_SOURCE_EXTENSIONS = (".cc", ".cpp")
BASELINE_RELPATH = os.path.join("tools", "lint", "tidy_baseline.json")

# clang-tidy diagnostic: /abs/path.cc:12:3: warning: message text [check-name]
DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<severity>warning|error):\s+(?P<message>.*?)\s+"
    r"\[(?P<check>[a-zA-Z0-9.,*_-]+)\]\s*$")


def find_clang_tidy():
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) or os.path.isfile(env) else None
    return shutil.which("clang-tidy")


def parse_diagnostics(output, root):
    """Parses clang-tidy stdout into finding dicts (repo-relative paths)."""
    findings = []
    seen = set()
    for line in output.splitlines():
        m = DIAG_RE.match(line)
        if m is None:
            continue
        path = m.group("path")
        if os.path.isabs(path):
            try:
                path = os.path.relpath(path, root)
            except ValueError:
                pass
        if path.startswith(".."):
            continue  # outside the repo (system headers)
        finding = {
            "path": path.replace(os.sep, "/"),
            "line": int(m.group("line")),
            "check": m.group("check"),
            "message": m.group("message"),
        }
        key = fingerprint(finding) + (finding["line"],)
        if key in seen:
            continue  # headers repeat across TUs
        seen.add(key)
        findings.append(finding)
    return findings


def fingerprint(finding):
    """Line-number-free identity used for baseline matching."""
    return (finding["path"], finding["check"], finding["message"])


def load_baseline(path):
    if not os.path.isfile(path):
        return []
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    return data.get("findings", [])


def save_baseline(path, findings):
    doc = {
        "comment": "clang-tidy baseline for tools/run_tidy.py; entries are "
                   "line-number-free (path, check, message) fingerprints. "
                   "Shrink via --update-baseline after fixing; do not add "
                   "entries for new code.",
        "findings": sorted(
            ({"path": f["path"], "check": f["check"], "message": f["message"]}
             for f in findings),
            key=lambda f: (f["path"], f["check"], f["message"])),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def split_findings(findings, baseline):
    """Returns (new, stale): findings not in baseline / baseline not hit."""
    baseline_keys = {fingerprint(b) for b in baseline}
    hit = set()
    new = []
    for finding in findings:
        key = fingerprint(finding)
        if key in baseline_keys:
            hit.add(key)
        else:
            new.append(finding)
    stale = [b for b in baseline if fingerprint(b) not in hit]
    return new, stale


def changed_files(root):
    files = set()
    for args in (["git", "diff", "--name-only", "HEAD"],
                 ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            out = subprocess.run(args, cwd=root, capture_output=True,
                                 text=True, check=True).stdout
        except (subprocess.CalledProcessError, FileNotFoundError):
            return None
        files.update(line.strip() for line in out.splitlines() if line.strip())
    return files


def compile_db_entries(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    with open(db_path, encoding="utf-8") as f:
        return json.load(f)


def find_build_dir(root, explicit):
    if explicit:
        if os.path.isfile(os.path.join(explicit, "compile_commands.json")):
            return explicit
        return None
    for name in ("build-tidy", "build"):
        candidate = os.path.join(root, name)
        if os.path.isfile(os.path.join(candidate, "compile_commands.json")):
            return candidate
    return None


def select_targets(root, build_dir, all_files):
    """Repo-relative .cc files to analyze: compile DB scope, diff-aware."""
    targets = []
    for entry in compile_db_entries(build_dir):
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.normpath(os.path.join(entry["directory"], path))
        try:
            rel = os.path.relpath(path, root)
        except ValueError:
            continue
        if rel.startswith("..") or not rel.endswith(CXX_SOURCE_EXTENSIONS):
            continue
        targets.append(rel)
    targets = sorted(set(targets))
    if all_files:
        return targets
    changed = changed_files(root)
    if changed is None:
        print("run_tidy: git unavailable; analyzing all files",
              file=sys.stderr)
        return targets
    # A header edit re-scopes every TU that could include it; cheap and
    # sound approximation: any .h change widens scope to all targets.
    if any(c.endswith(".h") for c in changed):
        return targets
    return [t for t in targets if t in changed]


def run_clang_tidy(binary, root, build_dir, targets, jobs):
    findings = []
    # Sequential by default (jobs=1): the gate usually sees a handful of
    # changed files, and this box is single-core anyway.
    del jobs
    for rel in targets:
        proc = subprocess.run(
            [binary, "-p", build_dir, "--quiet", os.path.join(root, rel)],
            capture_output=True, text=True, cwd=root)
        findings.extend(parse_diagnostics(proc.stdout, root))
        if proc.returncode not in (0, 1):
            sys.stderr.write(proc.stderr)
            print(f"run_tidy: clang-tidy failed on {rel} "
                  f"(exit {proc.returncode})", file=sys.stderr)
            return None
    return findings


# --- Self-test ---------------------------------------------------------------

SELF_TEST_OUTPUT = """\
/repo/src/obs/metrics.cc:10:5: warning: use emplace_back [performance-inefficient-vector-operation]
/repo/src/obs/metrics.cc:10:5: warning: use emplace_back [performance-inefficient-vector-operation]
/repo/src/core/clm.cc:44:9: error: mutex acquired here [concurrency-thread-canceltype-asynchronous]
noise line without a diagnostic
/usr/include/c++/12/bits/shared_ptr.h:100:1: warning: system header noise [bugprone-foo]
"""


def run_self_test():
    failures = []
    parsed = parse_diagnostics(SELF_TEST_OUTPUT, "/repo")
    if len(parsed) != 2:
        failures.append(f"parser: expected 2 findings, got {len(parsed)}: "
                        f"{parsed}")
    else:
        if parsed[0]["path"] != "src/obs/metrics.cc" or \
           parsed[0]["check"] != "performance-inefficient-vector-operation":
            failures.append(f"parser: bad first finding {parsed[0]}")
        if parsed[1]["check"] != \
           "concurrency-thread-canceltype-asynchronous":
            failures.append(f"parser: bad second finding {parsed[1]}")

    baseline = [{"path": "src/obs/metrics.cc",
                 "check": "performance-inefficient-vector-operation",
                 "message": "use emplace_back"}]
    new, stale = split_findings(parsed, baseline)
    if [f["check"] for f in new] != \
            ["concurrency-thread-canceltype-asynchronous"]:
        failures.append(f"baseline: expected 1 new finding, got {new}")
    if stale:
        failures.append(f"baseline: expected no stale entries, got {stale}")
    _, stale2 = split_findings([], baseline)
    if len(stale2) != 1:
        failures.append(f"baseline: stale detection failed, got {stale2}")
    return failures


# --- Driver ------------------------------------------------------------------


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this file's dir)")
    parser.add_argument("--build-dir", default=None,
                        help="build dir with compile_commands.json "
                             "(default: build-tidy/, then build/)")
    parser.add_argument("--all-files", action="store_true",
                        help="analyze every TU in the compile database, "
                             "not just files changed vs. git HEAD")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current findings "
                             "(implies --all-files)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="reserved; analysis is sequential")
    parser.add_argument("--self-test", action="store_true",
                        help="run parser/baseline fixtures before the scan")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"run_tidy: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    if args.self_test:
        failures = run_self_test()
        if failures:
            for failure in failures:
                print(f"run_tidy self-test FAILED: {failure}")
            return 1
        print("run_tidy: self-test fixtures passed", file=sys.stderr)

    binary = find_clang_tidy()
    if binary is None:
        print("=" * 72, file=sys.stderr)
        print("run_tidy: WARNING: clang-tidy not found; SKIPPING the "
              "clang-tidy gate.", file=sys.stderr)
        print("run_tidy: install LLVM (or set CLANG_TIDY) to run it; the "
              "annotations it", file=sys.stderr)
        print("run_tidy: checks compile away on GCC, so this build is NOT "
              "analysis-clean-verified.", file=sys.stderr)
        print("=" * 72, file=sys.stderr)
        return 0

    build_dir = find_build_dir(root, args.build_dir)
    if build_dir is None:
        print("run_tidy: no compile_commands.json found (configure a CMake "
              "preset first, e.g. `cmake --preset tidy`)", file=sys.stderr)
        return 2

    targets = select_targets(root, build_dir,
                             args.all_files or args.update_baseline)
    if not targets:
        print("run_tidy: no changed C++ sources in scope; nothing to do",
              file=sys.stderr)
        return 0
    print(f"run_tidy: analyzing {len(targets)} file(s) with {binary} "
          f"(db: {os.path.relpath(build_dir, root)})", file=sys.stderr)

    findings = run_clang_tidy(binary, root, build_dir, targets, args.jobs)
    if findings is None:
        return 2

    baseline_path = os.path.join(root, BASELINE_RELPATH)
    if args.update_baseline:
        save_baseline(baseline_path, findings)
        print(f"run_tidy: baseline rewritten with {len(findings)} "
              f"finding(s) at {BASELINE_RELPATH}", file=sys.stderr)
        return 0

    baseline = load_baseline(baseline_path)
    new, stale = split_findings(findings, baseline)
    for finding in new:
        print(f"{finding['path']}:{finding['line']}: [{finding['check']}] "
              f"{finding['message']}")
    for entry in stale:
        print(f"run_tidy: stale baseline entry (fixed? shrink with "
              f"--update-baseline): {entry['path']} [{entry['check']}] "
              f"{entry['message']}", file=sys.stderr)
    print(f"run_tidy: {len(findings)} finding(s), {len(new)} new, "
          f"{len(stale)} stale baseline entr(ies)", file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
