#!/usr/bin/env python3
"""perf_history: rolling ledger of BENCH_<experiment>.json artifacts.

Each experiment gets one JSONL ledger under the history directory (default
bench/history/): one line per recorded run, holding the artifact minus its
bulky raw "metrics" blob plus a record timestamp. The ledger is what turns
the one-shot perf_diff gate into a trend gate — perf_diff.py
--against-history N compares a candidate against the rolling median of the
last N comparable ledger entries instead of a single hand-picked baseline,
so one lucky or unlucky baseline run cannot mask (or fake) a regression.

Commands:
  append --history DIR ARTIFACT...   record artifacts into the ledger
  render --history DIR --out HTML    self-contained trend report (inline
                                     SVG, one chart per experiment/metric)
  --self-test                        run the built-in check suite and exit

Ledger lines are append-only and schema'd by the artifact they embed;
entries whose artifact schema or provenance (bench_profile, num_threads)
does not match a candidate are skipped at gate time, not rewritten.

See docs/performance.md for how check.sh wires the gate and the append
together (gate first, then append, so a regressing run never becomes its
own baseline).
"""

import argparse
import html
import json
import os
import statistics
import sys
import time

# Keys copied from the artifact into a ledger entry. "metrics" (the raw
# counter/gauge/histogram dump) is deliberately dropped: it is large,
# unbounded, and nothing in the trend gate reads it.
LEDGER_KEYS = (
    "schema_version", "experiment", "provenance", "wall_seconds", "phases",
    "throughput", "kernels", "roofline", "memory", "health",
)


def ledger_path(history_dir, experiment):
    safe = experiment.replace("/", "_")
    return os.path.join(history_dir, f"{safe}.jsonl")


def slim_artifact(doc):
    return {k: doc[k] for k in LEDGER_KEYS if k in doc}


def append_artifact(history_dir, artifact_path):
    """Records one artifact; returns the ledger path written."""
    with open(artifact_path, encoding="utf-8") as f:
        doc = json.load(f)
    experiment = doc.get("experiment")
    if not experiment:
        raise SystemExit(
            f"perf_history: {artifact_path}: missing 'experiment'")
    entry = {"recorded_unix": int(time.time()),
             "artifact": slim_artifact(doc)}
    os.makedirs(history_dir, exist_ok=True)
    path = ledger_path(history_dir, experiment)
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_history(history_dir, experiment):
    """All ledger entries for one experiment, oldest first. Unparsable
    lines are skipped (append-only files on shared machines do get torn)."""
    path = ledger_path(history_dir, experiment)
    entries = []
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(entry, dict) and "artifact" in entry:
                    entries.append(entry)
    except OSError:
        return []
    return entries


def comparable_entries(entries, candidate):
    """Ledger entries whose artifact can be gated against `candidate`:
    same schema, experiment, bench_profile and num_threads."""
    cprov = candidate.get("provenance", {})
    out = []
    for entry in entries:
        doc = entry["artifact"]
        if doc.get("schema_version") != candidate.get("schema_version"):
            continue
        if doc.get("experiment") != candidate.get("experiment"):
            continue
        prov = doc.get("provenance", {})
        if prov.get("bench_profile") != cprov.get("bench_profile"):
            continue
        if prov.get("num_threads") != cprov.get("num_threads"):
            continue
        out.append(entry)
    return out


def median_baseline(entries, window):
    """Synthesizes a baseline artifact from the rolling median of the last
    `window` entries. Only the gated timing/throughput families survive
    (wall_seconds, phases, throughput, and the *_per_sec rates of the
    kernels block): memory and health are per-run reports, and medianing
    the adaptively-iterated raw kernel counters (calls, flops) would
    manufacture meaningless baselines — rates are iteration-count
    independent, counts are not. Returns None when `entries` is empty."""
    tail = [e["artifact"] for e in entries[-window:]]
    if not tail:
        return None

    def median_of(values):
        return statistics.median(values) if values else None

    base = {
        "schema_version": tail[-1].get("schema_version"),
        "experiment": tail[-1].get("experiment"),
        "provenance": dict(tail[-1].get("provenance", {})),
        "wall_seconds": median_of(
            [float(d["wall_seconds"]) for d in tail if "wall_seconds" in d]),
        "phases": {},
        "throughput": {},
        "kernels": {},
    }
    base["provenance"]["git_sha"] = f"median-of-{len(tail)}"
    for family in ("phases", "throughput", "kernels"):
        names = set()
        for doc in tail:
            names.update(doc.get(family, {}))
        for name in names:
            if family == "kernels" and not name.endswith("_per_sec"):
                continue
            values = [float(doc[family][name]) for doc in tail
                      if name in doc.get(family, {})]
            if values:
                base[family][name] = median_of(values)
    return base


# --- Trend report ----------------------------------------------------------

TREND_METRICS = ("wall_seconds", "throughput.steps_per_sec",
                 "throughput.tokens_per_sec")


def metric_value(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def render_series_svg(values):
    """One polyline chart over run index; returns an inline SVG string."""
    width, height, pad = 480, 120, 8
    finite = [v for v in values if v is not None]
    if not finite:
        return "<svg viewBox='0 0 480 120'></svg>"
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    points = []
    n = len(values)
    for i, v in enumerate(values):
        if v is None:
            continue
        x = pad + (width - 2 * pad) * (i / max(1, n - 1))
        y = height - pad - (height - 2 * pad) * ((v - lo) / span)
        points.append(f"{x:.1f},{y:.1f}")
    return (
        f"<svg viewBox='0 0 {width} {height}' role='img'>"
        f"<polyline fill='none' stroke='#1f77b4' stroke-width='1.5' "
        f"points='{' '.join(points)}'/>"
        f"<text class='tick' x='{pad}' y='12'>max {hi:.4g}</text>"
        f"<text class='tick' x='{pad}' y='{height - 2}'>min {lo:.4g}</text>"
        "</svg>")


def render_trends(history_dir, out_path, title="TimeKD perf history"):
    """Writes the trend HTML; returns the number of charts rendered."""
    charts = []
    try:
        ledgers = sorted(f for f in os.listdir(history_dir)
                         if f.endswith(".jsonl"))
    except OSError:
        ledgers = []
    for name in ledgers:
        experiment = name[:-len(".jsonl")]
        entries = load_history(history_dir, experiment)
        if not entries:
            continue
        docs = [e["artifact"] for e in entries]
        metrics = list(TREND_METRICS)
        phase_names = sorted({p for d in docs for p in d.get("phases", {})})
        metrics.extend(f"phases.{p}" for p in phase_names)
        for metric in metrics:
            values = [metric_value(d, metric) for d in docs]
            if not any(v is not None for v in values):
                continue
            charts.append(
                f"<h2>{html.escape(experiment)} — {html.escape(metric)} "
                f"({len(values)} runs)</h2>\n"
                + render_series_svg(values))
    css = ("body{font-family:system-ui,sans-serif;margin:2em auto;"
           "max-width:60em;padding:0 1em;color:#222}h1{font-size:1.4em}"
           "h2{font-size:1em;margin:1.5em 0 0.3em}"
           "svg{background:#fff;border:1px solid #ddd;width:100%;"
           "max-width:480px;height:auto;display:block}"
           "text.tick{font-size:9px;fill:#777;font-family:monospace}")
    page = (f"<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
            f"<title>{html.escape(title)}</title><style>{css}</style>"
            f"</head>\n<body>\n<h1>{html.escape(title)}</h1>\n"
            + ("\n".join(charts) if charts else
               "<p>no history recorded yet</p>")
            + "\n</body></html>\n")
    with open(out_path, "w", encoding="utf-8") as f:
        f.write(page)
    return len(charts)


# --- Self-test -------------------------------------------------------------


def _synthetic(wall, steps=100.0, profile="smoke"):
    return {
        "schema_version": 3,
        "experiment": "selftest",
        "provenance": {"git_sha": "0" * 12, "bench_profile": profile,
                       "num_threads": 1},
        "wall_seconds": wall,
        "phases": {"bench/selftest": wall * 0.9},
        "throughput": {"steps_per_sec": steps, "tokens_per_sec": 0.0},
        "kernels": {"matmul_calls": 7,
                    "matmul_gflops_per_sec": 10.0 / wall},
        "roofline": {"machine": {"calibrated": False}, "kernels": {},
                     "ops": {}},
        "metrics": {"counters": {"x": 1}},
    }


def self_test():
    import tempfile

    failures = []

    def expect(name, condition):
        if not condition:
            failures.append(name)

    with tempfile.TemporaryDirectory() as tmp:
        history = os.path.join(tmp, "history")
        for wall in (0.30, 0.40, 0.20):
            artifact = os.path.join(tmp, "BENCH_selftest.json")
            with open(artifact, "w", encoding="utf-8") as f:
                json.dump(_synthetic(wall), f)
            append_artifact(history, artifact)

        entries = load_history(history, "selftest")
        expect("append+load round-trips 3 entries", len(entries) == 3)
        expect("ledger drops the raw metrics blob",
               all("metrics" not in e["artifact"] for e in entries))
        expect("ledger keeps the roofline block",
               all("roofline" in e["artifact"] for e in entries))

        comparable = comparable_entries(entries, _synthetic(0.3))
        expect("all entries comparable to a like candidate",
               len(comparable) == 3)
        other = comparable_entries(entries, _synthetic(0.3, profile="paper"))
        expect("profile mismatch filters everything", other == [])

        base = median_baseline(comparable, window=3)
        expect("median wall over {0.3,0.4,0.2} is 0.3",
               abs(base["wall_seconds"] - 0.30) < 1e-12)
        expect("median phases come along",
               abs(base["phases"]["bench/selftest"] - 0.27) < 1e-12)
        expect("median baseline carries provenance",
               base["provenance"]["bench_profile"] == "smoke")
        expect("memory/health do not get synthetic baselines",
               "memory" not in base and "health" not in base)
        expect("kernel rates are medianed",
               abs(base["kernels"]["matmul_gflops_per_sec"] - 10.0 / 0.30)
               < 1e-9)
        expect("raw kernel counts are not medianed",
               "matmul_calls" not in base["kernels"])
        expect("window trims to the tail",
               median_baseline(comparable, window=1)["wall_seconds"] == 0.20)
        expect("empty history yields no baseline",
               median_baseline([], window=5) is None)

        out = os.path.join(tmp, "trends.html")
        charts = render_trends(history, out)
        with open(out, encoding="utf-8") as f:
            page = f.read()
        expect("trend report renders charts", charts >= 2)
        expect("trend report names the experiment", "selftest" in page)
        expect("trend report is self-contained svg", "<svg" in page)

        empty_out = os.path.join(tmp, "empty.html")
        expect("empty history renders a note",
               render_trends(os.path.join(tmp, "none"), empty_out) == 0)

    if failures:
        for name in failures:
            print(f"perf_history self-test FAILED: {name}", file=sys.stderr)
        return 1
    print("perf_history self-test: all cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("command", nargs="?", choices=("append", "render"),
                        help="append artifacts or render the trend report")
    parser.add_argument("artifacts", nargs="*", help="BENCH_*.json files")
    parser.add_argument("--history", default="bench/history",
                        metavar="DIR", help="ledger directory")
    parser.add_argument("--out", help="output HTML (render)")
    parser.add_argument("--title", default="TimeKD perf history")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in check suite and exit")
    # Intermixed: "append --history DIR ART..." interleaves optionals with
    # the positional list, which plain parse_args refuses to re-join.
    args = parser.parse_intermixed_args()

    if args.self_test:
        return self_test()
    if args.command == "append":
        if not args.artifacts:
            parser.print_usage(sys.stderr)
            return 2
        for artifact in args.artifacts:
            path = append_artifact(args.history, artifact)
            print(f"perf_history: recorded {artifact} -> {path}")
        return 0
    if args.command == "render":
        if not args.out:
            parser.print_usage(sys.stderr)
            return 2
        charts = render_trends(args.history, args.out, args.title)
        print(f"perf_history: wrote {charts} chart(s) to {args.out}")
        return 0
    parser.print_usage(sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
