#!/usr/bin/env python3
"""perf_diff: regression gate over two BENCH_<experiment>.json artifacts.

Compares a candidate artifact (new code) against a baseline artifact (old
code) produced by the same bench binary (see src/eval/bench_artifact.h and
docs/observability.md for the schema). A metric regresses only when it is
worse by BOTH a relative threshold AND an absolute noise floor — small
timings jitter wildly in relative terms, large timings drift in absolute
terms, so each guard alone would either false-positive or miss.

Gated metrics (overridable via --threshold):

  wall_seconds            lower is better   rel 0.75   floor 0.15 s
  phases.<name>           lower is better   rel 0.75   floor 0.15 s
  throughput.*_per_sec    higher is better  rel 0.40   floor(base) 0.1/s
  kernels.*_per_sec       higher is better  rel 0.40   floor(base) 0.1/s
  memory.tensor_peak_bytes  lower is better rel 0.10   floor 1 MiB
  memory.rss_peak_bytes   lower is better   rel 0.25   floor 32 MiB

The kernels.*_per_sec rates (matmul_gflops_per_sec,
fused_attention_gflops_per_sec, ...) are wall-clock-normalized and thus
run-to-run comparable — they are the kernel-throughput trend gate. Raw
kernel counters (matmul_calls, ...) are reported but never gated:
google-benchmark picks iteration counts adaptively, so call/FLOP totals are
not comparable across runs even on identical code. The per-kernel roofline
efficiency (roofline.<kernel>.pct_of_peak, schema 2) is reported ungated
for the same reason — it contextualizes a timing regression, it is not one.

The training-health summary (health.anomalies, health.verdict — see
obs/health.h) is likewise reported but never gated: a noisy run should be
visible next to its timings, not fail the perf gate, and health has its own
fail-fast path inside the trainer. The forecast-calibration block
(calibration.* — core::ForecastAuditor's windows/mse/mae/coverage scalars;
per-horizon arrays stay artifact-only) follows the same rule: coverage
drift is a modelling signal the observatory tracks, never a perf gate.
The parallelism summary (critical_path.* — wall vs. critical path vs.
serial sum, stall decomposition, achievable speedup bound; schema 3, see
src/obs/critical_path.h) is reported ungated too: it explains WHERE a
wall-clock regression came from (queue wait vs. barrier imbalance vs.
serial sections), it is not itself a timing.

Comparing artifacts from different experiments, bench profiles, or thread
counts is a usage error (exit 2), not a regression — the numbers would be
meaningless.

--against-history N replaces the hand-picked baseline with the rolling
median of the last N comparable entries in the perf_history.py ledger
(tools/perf_history.py; default directory bench/history/). Only the timing
and throughput families are gated against the median — memory and health
are per-run reports there (a calibration probe's one-time RSS bump must
not fail the gate). An empty or incomparable history passes with a note:
the first run on a new machine has nothing to regress against.

Exit status: 0 = no regression, 1 = regression(s), 2 = usage/schema error.

Usage:
  tools/perf_diff.py BASELINE.json CANDIDATE.json
  tools/perf_diff.py --threshold wall_seconds=0.3:0.05 BASE.json CAND.json
  tools/perf_diff.py --against-history 5 CANDIDATE.json
  tools/perf_diff.py --self-test
"""

import argparse
import copy
import json
import os
import sys

SCHEMA_VERSION = 3


class Spec:
    """Gate parameters for one metric."""

    def __init__(self, rel, floor, higher_is_better=False):
        self.rel = rel          # relative worsening threshold (fraction)
        self.floor = floor      # absolute worsening floor (metric units)
        self.higher_is_better = higher_is_better


DEFAULT_SPECS = {
    "wall_seconds": Spec(0.75, 0.15),
    "phases.*": Spec(0.75, 0.15),
    "throughput.steps_per_sec": Spec(0.40, 0.1, higher_is_better=True),
    "throughput.tokens_per_sec": Spec(0.40, 0.1, higher_is_better=True),
    "kernels.*_per_sec": Spec(0.40, 0.1, higher_is_better=True),
    "memory.tensor_peak_bytes": Spec(0.10, 1 << 20),
    "memory.rss_peak_bytes": Spec(0.25, 32 << 20),
}


def load_artifact(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"perf_diff: cannot read {path}: {err}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise SystemExit(
            f"perf_diff: {path}: schema_version "
            f"{doc.get('schema_version')!r}, expected {SCHEMA_VERSION}")
    for key in ("experiment", "wall_seconds", "provenance"):
        if key not in doc:
            raise SystemExit(f"perf_diff: {path}: missing field {key!r}")
    return doc


def flatten_metrics(doc):
    """Gated-metric name -> value for one artifact."""
    out = {"wall_seconds": float(doc["wall_seconds"])}
    for name, seconds in doc.get("phases", {}).items():
        out[f"phases.{name}"] = float(seconds)
    for name, value in doc.get("throughput", {}).items():
        out[f"throughput.{name}"] = float(value)
    for name, value in doc.get("kernels", {}).items():
        # Only the *_per_sec rates get a spec; raw adaptive counters render
        # as "(ungated)" context.
        out[f"kernels.{name}"] = float(value)
    for name, value in doc.get("memory", {}).items():
        out[f"memory.{name}"] = float(value)
    for name, value in doc.get("health", {}).items():
        # No spec maps to health.* so these always render as "(ungated)".
        out[f"health.{name}"] = float(value)
    for name, value in doc.get("calibration", {}).items():
        # Forecast-calibration block (core::ForecastAuditor): report-only,
        # like health.* — coverage drift is a modelling signal, not a perf
        # regression. Arrays (per_horizon_*) and non-numeric entries stay in
        # the artifact but out of the diff table.
        if isinstance(value, (int, float)):
            out[f"calibration.{name}"] = float(value)
    for name, value in doc.get("critical_path", {}).items():
        # Parallelism summary (obs/critical_path.h): report-only. No spec
        # maps to critical_path.* so every entry renders as "(ungated)" —
        # the stall decomposition explains a wall regression, it never is
        # one. The enabled flag is skipped (bool, not a metric).
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"critical_path.{name}"] = float(value)
    for name, kernel in doc.get("roofline", {}).get("kernels", {}).items():
        # Ungated context: how close each credited kernel sat to its
        # roofline ceiling (see src/obs/roofline.h).
        if isinstance(kernel, dict) and "pct_of_peak" in kernel:
            out[f"roofline.{name}.pct_of_peak"] = float(kernel["pct_of_peak"])
    return out


def spec_for(metric, specs):
    if metric in specs:
        return specs[metric]
    if metric.startswith("phases."):
        return specs.get("phases.*")
    if metric.startswith("kernels.") and metric.endswith("_per_sec"):
        return specs.get("kernels.*_per_sec")
    return None


def check_comparable(baseline, candidate):
    """Returns a list of mismatch messages (non-empty = exit 2)."""
    problems = []
    if baseline["experiment"] != candidate["experiment"]:
        problems.append(
            f"experiment mismatch: {baseline['experiment']!r} vs "
            f"{candidate['experiment']!r}")
    for key in ("bench_profile", "num_threads"):
        b = baseline["provenance"].get(key)
        c = candidate["provenance"].get(key)
        if b != c:
            problems.append(f"provenance.{key} mismatch: {b!r} vs {c!r}")
    return problems


def diff(baseline, candidate, specs):
    """Returns (report_lines, regressions)."""
    base = flatten_metrics(baseline)
    cand = flatten_metrics(candidate)
    lines = []
    regressions = []
    for metric in sorted(set(base) | set(cand)):
        spec = spec_for(metric, specs)
        if metric not in base or metric not in cand:
            side = "candidate" if metric not in base else "baseline"
            lines.append(f"  {metric:<40} only in {side}; skipped")
            continue
        b, c = base[metric], cand[metric]
        if spec is None:
            lines.append(f"  {metric:<40} {b:>14.6g} -> {c:>14.6g}  (ungated)")
            continue
        worse_by = (b - c) if spec.higher_is_better else (c - b)
        if spec.higher_is_better and b < spec.floor:
            # Throughput floors gate on the baseline magnitude: a counter
            # that never moved (0 steps/sec in a kernel bench) is noise.
            lines.append(
                f"  {metric:<40} {b:>14.6g} -> {c:>14.6g}  "
                f"(baseline below floor; skipped)")
            continue
        rel = worse_by / b if b > 0 else (float("inf") if worse_by > 0 else 0)
        if spec.higher_is_better:
            # Floor already applied to the baseline magnitude above.
            regressed = rel > spec.rel
        else:
            regressed = worse_by > spec.floor and rel > spec.rel
        verdict = "REGRESSION" if regressed else "ok"
        lines.append(
            f"  {metric:<40} {b:>14.6g} -> {c:>14.6g}  "
            f"({rel:+8.1%} worse-direction)  {verdict}")
        if regressed:
            regressions.append(metric)
    return lines, regressions


def parse_threshold_overrides(overrides, specs):
    for item in overrides or []:
        try:
            metric, value = item.split("=", 1)
            parts = value.split(":")
            rel = float(parts[0])
            floor = float(parts[1]) if len(parts) > 1 else 0.0
        except (ValueError, IndexError):
            raise SystemExit(
                f"perf_diff: bad --threshold {item!r} "
                "(want metric=rel or metric=rel:floor)")
        prior = spec_for(metric, specs)
        higher = prior.higher_is_better if prior else False
        specs[metric] = Spec(rel, floor, higher_is_better=higher)
    return specs


def run_diff(baseline_path, candidate_path, specs):
    baseline = load_artifact(baseline_path)
    candidate = load_artifact(candidate_path)
    problems = check_comparable(baseline, candidate)
    if problems:
        for p in problems:
            print(f"perf_diff: not comparable: {p}", file=sys.stderr)
        return 2
    lines, regressions = diff(baseline, candidate, specs)
    print(f"perf_diff: {baseline['experiment']} "
          f"[{baseline['provenance'].get('bench_profile')}] "
          f"{baseline_path} -> {candidate_path}")
    for line in lines:
        print(line)
    if regressions:
        print(f"perf_diff: {len(regressions)} regression(s): "
              f"{', '.join(regressions)}")
        return 1
    print("perf_diff: no regressions")
    return 0


def _import_perf_history():
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import perf_history
    return perf_history


def run_against_history(candidate_path, history_dir, window, specs):
    """Gates `candidate_path` against the rolling median of the last
    `window` comparable ledger entries. Empty history passes (exit 0)."""
    perf_history = _import_perf_history()
    candidate = load_artifact(candidate_path)
    entries = perf_history.comparable_entries(
        perf_history.load_history(history_dir, candidate["experiment"]),
        candidate)
    baseline = perf_history.median_baseline(entries, window)
    if baseline is None:
        print(f"perf_diff: no comparable history for "
              f"{candidate['experiment']} in {history_dir}; "
              "nothing to regress against (pass)")
        return 0
    lines, regressions = diff(baseline, candidate, specs)
    used = min(window, len(entries))
    print(f"perf_diff: {candidate['experiment']} "
          f"[{candidate['provenance'].get('bench_profile')}] "
          f"median-of-{used} history baseline -> {candidate_path}")
    for line in lines:
        print(line)
    if regressions:
        print(f"perf_diff: {len(regressions)} regression(s) vs history: "
              f"{', '.join(regressions)}")
        return 1
    print("perf_diff: no regressions vs history")
    return 0


# --- Self-test -------------------------------------------------------------


def synthetic_artifact():
    return {
        "schema_version": 3,
        "experiment": "selftest",
        "provenance": {"git_sha": "0" * 12, "bench_profile": "smoke",
                       "num_threads": 1, "hostname": "x", "compiler": "t"},
        "wall_seconds": 0.30,
        "phases": {"bench/selftest": 0.29},
        "throughput": {"steps_per_sec": 100.0, "tokens_per_sec": 0.0},
        "kernels": {"matmul_calls": 10, "matmul_flops": 1000,
                    "matmul_gflops_per_sec": 12.0,
                    "fused_attention_gflops_per_sec": 5.0,
                    "ctx_spans_per_sec": 2.0e6},
        "critical_path": {"enabled": True, "wall_us": 300000,
                          "critical_path_us": 120000,
                          "serial_sum_us": 280000, "speedup_bound": 2.33,
                          "avg_parallelism": 0.93, "serial_us": 150000,
                          "queue_stall_us": 10000,
                          "barrier_stall_us": 20000, "parallel_us": 120000,
                          "num_jobs": 4, "num_shards": 16, "num_spans": 40,
                          "num_threads": 8},
        "roofline": {
            "machine": {"calibrated": True, "source": "probe",
                        "peak_flops_per_sec": 1e11,
                        "peak_bytes_per_sec": 1e10,
                        "ridge_flops_per_byte": 10.0},
            "kernels": {"tensor/matmul": {
                "count": 10, "total_us": 1000, "flops": 1000,
                "read_bytes": 100, "write_bytes": 50, "ai": 6.67,
                "flops_per_sec": 1e6, "bytes_per_sec": 1.5e5,
                "pct_of_peak": 0.42, "bound": "memory"}},
            "ops": {},
        },
        "memory": {"tensor_peak_bytes": 64 << 20,
                   "rss_peak_bytes": 128 << 20},
        "health": {"anomalies": 0, "verdict": 0},
        "calibration": {"windows": 128, "horizon": 24, "channels": 7,
                        "mse": 0.31, "mae": 0.42, "coverage80": 0.79,
                        "coverage95": 0.94,
                        "per_horizon_mse": [0.2, 0.3, 0.4]},
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
    }


def self_test():
    failures = []

    def expect(name, condition):
        if not condition:
            failures.append(name)

    specs = dict(DEFAULT_SPECS)
    base = synthetic_artifact()

    _, regs = diff(base, copy.deepcopy(base), specs)
    expect("identical artifacts are clean", regs == [])

    doubled = copy.deepcopy(base)
    doubled["wall_seconds"] *= 2
    _, regs = diff(base, doubled, specs)
    expect("2x wall_seconds regresses", regs == ["wall_seconds"])

    faster = copy.deepcopy(base)
    faster["wall_seconds"] *= 0.5
    _, regs = diff(base, faster, specs)
    expect("improvement is clean", regs == [])

    jitter = copy.deepcopy(base)
    jitter["wall_seconds"] *= 1.2  # above rel? no: 20% < 75%
    _, regs = diff(base, jitter, specs)
    expect("20% jitter under floor+rel is clean", regs == [])

    slow_phase = copy.deepcopy(base)
    slow_phase["phases"]["bench/selftest"] = 0.29 * 3
    _, regs = diff(base, slow_phase, specs)
    expect("3x phase regresses", regs == ["phases.bench/selftest"])

    slower_steps = copy.deepcopy(base)
    slower_steps["throughput"]["steps_per_sec"] = 40.0
    _, regs = diff(base, slower_steps, specs)
    expect("throughput drop regresses", regs == ["throughput.steps_per_sec"])

    zero_tokens = copy.deepcopy(base)
    zero_tokens["throughput"]["tokens_per_sec"] = 0.0
    _, regs = diff(base, zero_tokens, specs)
    expect("dead throughput counter is skipped", regs == [])

    fat = copy.deepcopy(base)
    fat["memory"]["tensor_peak_bytes"] = int((64 << 20) * 1.5)
    _, regs = diff(base, fat, specs)
    expect("tensor peak growth regresses",
           regs == ["memory.tensor_peak_bytes"])

    noisy = copy.deepcopy(base)
    noisy["health"]["anomalies"] = 7
    noisy["health"]["verdict"] = 2
    report, regs = diff(base, noisy, specs)
    expect("health anomalies never gate", regs == [])
    expect("health anomalies are reported",
           any("health.anomalies" in line and "ungated" in line
               for line in report))

    drifted = copy.deepcopy(base)
    drifted["calibration"]["coverage95"] = 0.50  # badly miscalibrated
    drifted["calibration"]["mse"] = 3.1
    report, regs = diff(base, drifted, specs)
    expect("calibration drift never gates", regs == [])
    expect("calibration drift is reported",
           any("calibration.coverage95" in line and "ungated" in line
               for line in report))

    slow_kernel = copy.deepcopy(base)
    slow_kernel["kernels"]["fused_attention_gflops_per_sec"] = 1.0
    _, regs = diff(base, slow_kernel, specs)
    expect("kernel throughput drop regresses",
           regs == ["kernels.fused_attention_gflops_per_sec"])

    slow_ctx = copy.deepcopy(base)
    slow_ctx["kernels"]["ctx_spans_per_sec"] = 1.0e5  # 20x drop
    _, regs = diff(base, slow_ctx, specs)
    expect("context-propagation rate drop regresses",
           regs == ["kernels.ctx_spans_per_sec"])

    stalled = copy.deepcopy(base)
    stalled["critical_path"]["barrier_stall_us"] = 200000
    stalled["critical_path"]["speedup_bound"] = 1.01
    report, regs = diff(base, stalled, specs)
    expect("critical_path never gates", regs == [])
    expect("critical_path is reported",
           any("critical_path.barrier_stall_us" in line and "ungated" in line
               for line in report))
    expect("critical_path enabled flag stays out of the table",
           not any("critical_path.enabled" in line for line in report))

    more_calls = copy.deepcopy(base)
    more_calls["kernels"]["matmul_calls"] = 9999
    report, regs = diff(base, more_calls, specs)
    expect("raw kernel counters never gate", regs == [])
    expect("raw kernel counters are reported",
           any("kernels.matmul_calls" in line and "ungated" in line
               for line in report))

    other = copy.deepcopy(base)
    other["provenance"]["bench_profile"] = "paper"
    expect("profile mismatch detected", check_comparable(base, other) != [])

    override = parse_threshold_overrides(["wall_seconds=0.1:0.01"],
                                         dict(DEFAULT_SPECS))
    _, regs = diff(base, jitter, override)
    expect("threshold override applies", regs == ["wall_seconds"])

    less_efficient = copy.deepcopy(base)
    less_efficient["roofline"]["kernels"]["tensor/matmul"]["pct_of_peak"] = 0.1
    report, regs = diff(base, less_efficient, specs)
    expect("roofline efficiency never gates", regs == [])
    expect("roofline efficiency is reported",
           any("roofline.tensor/matmul.pct_of_peak" in line
               and "ungated" in line for line in report))

    perf_history = _import_perf_history()
    history = [{"artifact": perf_history.slim_artifact(base)}
               for _ in range(3)]
    median = perf_history.median_baseline(
        perf_history.comparable_entries(history, base), window=5)
    expect("history median reconstructs the baseline",
           median is not None and median["wall_seconds"] == 0.30)
    _, regs = diff(median, copy.deepcopy(base), specs)
    expect("candidate equal to history median is clean", regs == [])
    _, regs = diff(median, doubled, specs)
    expect("2x wall vs history median regresses", "wall_seconds" in regs)
    expect("history median carries kernel rates",
           median["kernels"]["fused_attention_gflops_per_sec"] == 5.0)
    _, regs = diff(median, slow_kernel, specs)
    expect("kernel throughput gates against history",
           "kernels.fused_attention_gflops_per_sec" in regs)
    fat_vs_history = diff(median, fat, specs)[1]
    expect("memory is report-only against history", fat_vs_history == [])
    expect("empty history yields no baseline",
           perf_history.median_baseline([], window=5) is None)

    if failures:
        for name in failures:
            print(f"perf_diff self-test FAILED: {name}", file=sys.stderr)
        return 1
    print("perf_diff self-test: all cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("candidate", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", action="append", metavar="M=REL[:FLOOR]",
                        help="override a metric's gate, e.g. "
                             "wall_seconds=0.3:0.05 (repeatable)")
    parser.add_argument("--against-history", type=int, metavar="N",
                        help="gate the single artifact argument against the "
                             "rolling median of the last N comparable "
                             "perf_history.py ledger entries")
    parser.add_argument("--history", default="bench/history", metavar="DIR",
                        help="ledger directory for --against-history")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in check suite and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    specs = parse_threshold_overrides(args.threshold, dict(DEFAULT_SPECS))
    if args.against_history is not None:
        if args.against_history < 1 or not args.baseline or args.candidate:
            print("perf_diff: --against-history N takes exactly one "
                  "candidate artifact and N >= 1", file=sys.stderr)
            return 2
        return run_against_history(args.baseline, args.history,
                                   args.against_history, specs)
    if not args.baseline or not args.candidate:
        parser.print_usage(sys.stderr)
        return 2
    return run_diff(args.baseline, args.candidate, specs)


if __name__ == "__main__":
    sys.exit(main())
